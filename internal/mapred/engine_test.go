package mapred

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

func newTestEngine() *Engine {
	return NewEngine(dfs.New(), cluster.Default())
}

func seedUsers(t *testing.T, fs *dfs.FS) {
	t.Helper()
	schema := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "city", Kind: types.KindString},
	)
	rows := []types.Tuple{
		{types.NewString("alice"), types.NewString("waterloo")},
		{types.NewString("bob"), types.NewString("toronto")},
		{types.NewString("carol"), types.NewString("waterloo")},
	}
	if err := fs.WritePartitioned("data/users", schema, rows, 2); err != nil {
		t.Fatal(err)
	}
}

func seedViews(t *testing.T, fs *dfs.FS) {
	t.Helper()
	schema := types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindInt},
	)
	rows := []types.Tuple{
		{types.NewString("alice"), types.NewInt(10)},
		{types.NewString("alice"), types.NewInt(5)},
		{types.NewString("bob"), types.NewInt(7)},
		{types.NewString("dave"), types.NewInt(99)}, // no matching user
		{types.NewString("carol"), types.NewInt(1)},
	}
	if err := fs.WritePartitioned("data/views", schema, rows, 3); err != nil {
		t.Fatal(err)
	}
}

func usersSchema() types.Schema {
	return types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "city", Kind: types.KindString},
	)
}

func viewsSchema() types.Schema {
	return types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindInt},
	)
}

func mustJob(t *testing.T, id string, p *physical.Plan) *Job {
	t.Helper()
	j, err := NewJob(id, p)
	if err != nil {
		t.Fatalf("NewJob(%s): %v\n%s", id, err, p)
	}
	return j
}

func readSorted(t *testing.T, fs *dfs.FS, path string) []string {
	t.Helper()
	rows, err := fs.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = types.FormatTSV(r)
	}
	sort.Strings(out)
	return out
}

func TestMapOnlyFilterProject(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	f := p.Add(&physical.Operator{Kind: physical.OpFilter, Inputs: []int{l.ID},
		Pred:   expr.Binary(">", expr.ColIdx(1), expr.Lit(types.NewInt(4))),
		Schema: l.Schema})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{f.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Names: []string{"user"},
		Schema: types.SchemaFromNames("user")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/filtered", Inputs: []int{fe.ID}, Schema: fe.Schema})

	job := mustJob(t, "j1", p)
	if job.Blocking() != nil {
		t.Fatal("expected map-only job")
	}
	res, err := e.RunJob(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/filtered")
	want := []string{"alice", "alice", "bob", "dave"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("output = %v, want %v", got, want)
	}
	if res.Stats.HasReduce || res.Stats.ShuffleBytes != 0 {
		t.Errorf("map-only stats wrong: %+v", res.Stats)
	}
	if res.Stats.InputBytes == 0 || res.Stats.OutputBytes == 0 {
		t.Errorf("byte counters empty: %+v", res.Stats)
	}
	if res.Times.Total <= 0 {
		t.Error("no simulated time")
	}
}

func TestJoinJob(t *testing.T) {
	e := newTestEngine()
	seedUsers(t, e.FS)
	seedViews(t, e.FS)
	p := physical.NewPlan()
	u := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/users", Schema: usersSchema()})
	v := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	j := p.Add(&physical.Operator{Kind: physical.OpJoin, Inputs: []int{u.ID, v.ID},
		Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
		Schema: usersSchema().Concat(viewsSchema())})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/joined", Inputs: []int{j.ID}, Schema: j.Schema})

	job := mustJob(t, "join", p)
	res, err := e.RunJob(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/joined")
	want := []string{
		"alice\twaterloo\talice\t10",
		"alice\twaterloo\talice\t5",
		"bob\ttoronto\tbob\t7",
		"carol\twaterloo\tcarol\t1",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("join output:\n%v\nwant:\n%v", got, want)
	}
	if !res.Stats.HasReduce || res.Stats.ShuffleBytes == 0 {
		t.Errorf("join stats wrong: %+v", res.Stats)
	}
}

func TestGroupAggregateJob(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	sub := viewsSchema()
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "C", Kind: types.KindBag, Sub: &sub}}}})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0), mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("C"), "rev")), g.Schema)},
		Schema: types.SchemaFromNames("group", "total")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/grouped", Inputs: []int{fe.ID}, Schema: fe.Schema})

	job := mustJob(t, "group", p)
	if _, err := e.RunJob(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/grouped")
	want := []string{"alice\t15", "bob\t7", "carol\t1", "dave\t99"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("grouped = %v, want %v", got, want)
	}
}

func mustBind(t *testing.T, e *expr.Expr, s types.Schema) *expr.Expr {
	t.Helper()
	b, err := e.Bind(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGroupAllJob(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	sub := viewsSchema()
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "A", Kind: types.KindBag, Sub: &sub}}}})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs: []*expr.Expr{
			mustBind(t, expr.Call("COUNT", expr.Col("A")), g.Schema),
			mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("A"), "rev")), g.Schema)},
		Schema: types.SchemaFromNames("n", "total")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/all", Inputs: []int{fe.ID}, Schema: fe.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "all", p)); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/all")
	if len(got) != 1 || got[0] != "5\t122" {
		t.Errorf("group all = %v, want [5\\t122]", got)
	}
}

func TestDistinctJob(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{l.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("user")})
	d := p.Add(&physical.Operator{Kind: physical.OpDistinct, Inputs: []int{fe.ID}, Schema: fe.Schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/distinct", Inputs: []int{d.ID}, Schema: d.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "distinct", p)); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/distinct")
	want := []string{"alice", "bob", "carol", "dave"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("distinct = %v, want %v", got, want)
	}
}

func TestCoGroupJob(t *testing.T) {
	e := newTestEngine()
	seedUsers(t, e.FS)
	seedViews(t, e.FS)
	p := physical.NewPlan()
	u := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/users", Schema: usersSchema()})
	v := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	us, vs := usersSchema(), viewsSchema()
	cg := p.Add(&physical.Operator{Kind: physical.OpCoGroup, Inputs: []int{u.ID, v.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"},
			{Name: "users", Kind: types.KindBag, Sub: &us},
			{Name: "views", Kind: types.KindBag, Sub: &vs}}}})
	// Anti-join: users with no views, and vice versa dave has views but no user.
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{cg.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0),
			mustBind(t, expr.Call("COUNT", expr.Col("users")), cg.Schema),
			mustBind(t, expr.Call("COUNT", expr.Col("views")), cg.Schema)},
		Schema: types.SchemaFromNames("group", "nu", "nv")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/cg", Inputs: []int{fe.ID}, Schema: fe.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "cg", p)); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/cg")
	want := []string{"alice\t1\t2", "bob\t1\t1", "carol\t1\t1", "dave\t0\t1"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("cogroup = %v, want %v", got, want)
	}
}

func TestOrderJob(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	o := p.Add(&physical.Operator{Kind: physical.OpOrder, Inputs: []int{l.ID},
		SortCols: []physical.SortCol{{Index: 1, Desc: true}}, Schema: l.Schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/sorted", Inputs: []int{o.ID}, Schema: o.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "order", p)); err != nil {
		t.Fatal(err)
	}
	rows, err := e.FS.ReadAll("out/sorted")
	if err != nil {
		t.Fatal(err)
	}
	var revs []int64
	for _, r := range rows {
		revs = append(revs, r[1].Int())
	}
	for i := 1; i < len(revs); i++ {
		if revs[i] > revs[i-1] {
			t.Fatalf("not descending: %v", revs)
		}
	}
	if len(revs) != 5 {
		t.Errorf("row count = %d", len(revs))
	}
}

func TestLimitJob(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	lim := p.Add(&physical.Operator{Kind: physical.OpLimit, Inputs: []int{l.ID}, N: 2, Schema: l.Schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/limited", Inputs: []int{lim.ID}, Schema: l.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "limit", p)); err != nil {
		t.Fatal(err)
	}
	rows, err := e.FS.ReadAll("out/limited")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("limit produced %d rows", len(rows))
	}
}

func TestUnionIntoDistinct(t *testing.T) {
	e := newTestEngine()
	seedUsers(t, e.FS)
	seedViews(t, e.FS)
	p := physical.NewPlan()
	u := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/users", Schema: usersSchema()})
	v := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	fu := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{u.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("user")})
	fv := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{v.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("user")})
	un := p.Add(&physical.Operator{Kind: physical.OpUnion, Inputs: []int{fu.ID, fv.ID}, Schema: fu.Schema})
	d := p.Add(&physical.Operator{Kind: physical.OpDistinct, Inputs: []int{un.ID}, Schema: un.Schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/names", Inputs: []int{d.ID}, Schema: d.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "union", p)); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/names")
	want := []string{"alice", "bob", "carol", "dave"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("union+distinct = %v, want %v", got, want)
	}
}

func TestNullJoinKeysDropped(t *testing.T) {
	e := newTestEngine()
	schema := types.NewSchema(types.Field{Name: "k", Kind: types.KindString})
	if err := e.FS.WriteTuples("a", schema, []types.Tuple{{types.Null()}, {types.NewString("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := e.FS.WriteTuples("b", schema, []types.Tuple{{types.Null()}, {types.NewString("x")}}); err != nil {
		t.Fatal(err)
	}
	p := physical.NewPlan()
	a := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "a", Schema: schema})
	b := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "b", Schema: schema})
	j := p.Add(&physical.Operator{Kind: physical.OpJoin, Inputs: []int{a.ID, b.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}}, Schema: schema.Concat(schema)})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/nulljoin", Inputs: []int{j.ID}, Schema: j.Schema})

	if _, err := e.RunJob(context.Background(), mustJob(t, "nj", p)); err != nil {
		t.Fatal(err)
	}
	rows, err := e.FS.ReadAll("out/nulljoin")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("null keys joined: %d rows", len(rows))
	}
}

func TestInjectedStoreAccounting(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{l.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("user")})
	sp := p.Add(&physical.Operator{Kind: physical.OpSplit, Inputs: []int{fe.ID}, Schema: fe.Schema, Injected: true})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "restore/sub", Inputs: []int{sp.ID}, Schema: fe.Schema, Injected: true})
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{sp.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}}, Schema: types.SchemaFromNames("group", "C")})
	fe2 := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0), expr.Call("COUNT", expr.ColIdx(1))},
		Schema: types.SchemaFromNames("group", "cnt")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/counts", Inputs: []int{fe2.ID}, Schema: fe2.Schema})

	job := mustJob(t, "inj", p)
	res, err := e.RunJob(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedStoreBytes == 0 {
		t.Error("injected store bytes not counted")
	}
	if res.Stats.MapStoreBytes != res.InjectedStoreBytes {
		t.Errorf("map store bytes %d != injected %d", res.Stats.MapStoreBytes, res.InjectedStoreBytes)
	}
	if res.StoreBytes["restore/sub"] == 0 || res.StoreBytes["out/counts"] == 0 {
		t.Errorf("per-store bytes missing: %v", res.StoreBytes)
	}
	// The materialized sub-job output must hold the projection results.
	got := readSorted(t, e.FS, "restore/sub")
	if len(got) != 5 {
		t.Errorf("sub-job output rows = %d, want 5", len(got))
	}
	// And the final result is unaffected by the injection.
	counts := readSorted(t, e.FS, "out/counts")
	want := []string{"alice\t2", "bob\t1", "carol\t1", "dave\t1"}
	if strings.Join(counts, "|") != strings.Join(want, "|") {
		t.Errorf("counts = %v, want %v", counts, want)
	}
}

func TestTwoBlockingOperatorsRejected(t *testing.T) {
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "x", Schema: types.SchemaFromNames("a")})
	d := p.Add(&physical.Operator{Kind: physical.OpDistinct, Inputs: []int{l.ID}, Schema: l.Schema})
	o := p.Add(&physical.Operator{Kind: physical.OpOrder, Inputs: []int{d.ID},
		SortCols: []physical.SortCol{{Index: 0}}, Schema: l.Schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "y", Inputs: []int{o.ID}, Schema: l.Schema})
	if _, err := NewJob("bad", p); err == nil {
		t.Error("two blocking operators accepted")
	}
}

func TestMissingInputFails(t *testing.T) {
	e := newTestEngine()
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "nonexistent", Schema: types.SchemaFromNames("a")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o", Inputs: []int{l.ID}, Schema: l.Schema})
	if _, err := e.RunJob(context.Background(), mustJob(t, "missing", p)); err == nil {
		t.Error("job over missing input succeeded")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		e := newTestEngine()
		seedUsers(t, e.FS)
		seedViews(t, e.FS)
		p := physical.NewPlan()
		u := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/users", Schema: usersSchema()})
		v := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
		j := p.Add(&physical.Operator{Kind: physical.OpJoin, Inputs: []int{u.ID, v.ID},
			Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
			Schema: usersSchema().Concat(viewsSchema())})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/j", Inputs: []int{j.ID}, Schema: j.Schema})
		if _, err := e.RunJob(context.Background(), mustJob(t, "det", p)); err != nil {
			t.Fatal(err)
		}
		rows, err := e.FS.ReadAll("out/j")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = types.FormatTSV(r)
		}
		return out
	}
	a, b := run(), run()
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Error("same job produced different partition contents across runs")
	}
}
