package mapred

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// benchRuns builds nRuns unsorted shuffle runs of runLen records each, with
// multi-column keys drawn from a small domain so the comparator does real
// work on ties.
func benchRuns(nRuns, runLen int) [][]shuffleRec {
	rng := rand.New(rand.NewSource(7))
	runs := make([][]shuffleRec, nRuns)
	seq := int64(0)
	for r := range runs {
		run := make([]shuffleRec, runLen)
		for i := range run {
			run[i] = shuffleRec{
				key: types.Tuple{
					types.NewInt(int64(rng.Intn(64))),
					types.NewString(fmt.Sprintf("u%03d", rng.Intn(128))),
				},
				seq: seq,
				val: types.Tuple{types.NewInt(int64(rng.Intn(1000)))},
			}
			seq++
		}
		runs[r] = run
	}
	return runs
}

func cloneRuns(src [][]shuffleRec) [][]shuffleRec {
	out := make([][]shuffleRec, len(src))
	for i, r := range src {
		out[i] = append([]shuffleRec(nil), r...)
	}
	return out
}

// BenchmarkShuffleKernel measures the reduce-side ordering kernel on
// identical input: the serial reference (concatenate every run into one
// buffer, one closure-driven sort.SliceStable) against the default plane
// (per-run compiled sort + k-way merge into a pooled buffer). This is the
// code the tentpole replaced; allocs/op is the headline the acceptance
// criteria pin (>=50% reduction).
func BenchmarkShuffleKernel(b *testing.B) {
	const nRuns, runLen = 8, 4_000
	base := benchRuns(nRuns, runLen)
	total := nRuns * runLen
	blocking := &physical.Operator{Kind: physical.OpGroup, Keys: [][]*expr.Expr{{expr.ColIdx(0)}}}
	cmp := compileComparator(blocking)

	b.Run("serial-concat-slicestable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			runs := cloneRuns(base)
			b.StartTimer()
			buf := make([]shuffleRec, 0, total)
			for _, r := range runs {
				buf = append(buf, r...)
			}
			sortShuffle(blocking, buf)
		}
	})

	b.Run("sorted-runs-kway-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			runs := cloneRuns(base)
			b.StartTimer()
			for _, r := range runs {
				sortRun(cmp, r)
			}
			merged := mergeRuns(cmp, runs, getRecSlice(total))
			putRecSlice(merged)
		}
	})
}

// benchOrderJob builds the shuffle-heavy workload: order the whole input by
// (city, name) so every row rides the shuffle and the reduce side is pure
// ordering.
func benchOrderJob(nRows int) (*dfs.FS, *Job, error) {
	fs := dfs.New()
	schema := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "city", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindInt},
	)
	rng := rand.New(rand.NewSource(11))
	rows := make([]types.Tuple, nRows)
	for i := range rows {
		rows[i] = types.Tuple{
			types.NewString(fmt.Sprintf("u%05d", rng.Intn(nRows))),
			types.NewString(fmt.Sprintf("c%02d", rng.Intn(20))),
			types.NewInt(int64(rng.Intn(8))),
		}
	}
	if err := fs.WritePartitioned("bench/in", schema, rows, 8); err != nil {
		return nil, nil, err
	}
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "bench/in", Schema: schema})
	o := p.Add(&physical.Operator{Kind: physical.OpOrder, Inputs: []int{l.ID},
		SortCols: []physical.SortCol{{Index: 1}, {Index: 2}, {Index: 0, Desc: true}}, Schema: schema})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "bench/out", Inputs: []int{o.ID}, Schema: schema})
	j, err := NewJob("bench-order", p)
	return fs, j, err
}

// BenchmarkEngineOrderJob runs the whole shuffle-heavy job end to end on
// each plane: decode, shuffle, sort/merge, reduce, encode, commit.
func BenchmarkEngineOrderJob(b *testing.B) {
	const nRows = 60_000
	for _, serial := range []bool{true, false} {
		name := "parallel-plane"
		if serial {
			name = "serial-plane"
		}
		b.Run(name, func(b *testing.B) {
			fs, job, err := benchOrderJob(nRows)
			if err != nil {
				b.Fatal(err)
			}
			e := NewEngine(fs, cluster.Default())
			e.SerialDataPlane = serial
			e.ReduceTasks = 8
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunJob(context.Background(), job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
