package mapred_test

// Seeded round-trip property test for the versioned job wire codec: any
// compiled job — every operator kind, every blocking kind, combiner and
// map-only shapes included — must survive EncodeJob/DecodeJob with an
// identical plan fingerprint, and a decoded workflow must execute
// byte-identically to the original (full-DFS export comparison). This is the
// contract the fleet backend rests on: a worker that decodes an envelope runs
// exactly the job the coordinator compiled.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/logical"
	"repro/internal/mapred"
	"repro/internal/mrcompile"
	"repro/internal/piglatin"
	"repro/internal/types"
)

// compileSrc runs the full front end: Pig Latin → logical plan → MR workflow.
func compileSrc(t *testing.T, src string) *mapred.Workflow {
	t.Helper()
	script, err := piglatin.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	plan, err := logical.Build(script)
	if err != nil {
		t.Fatalf("build: %v\n%s", err, src)
	}
	w, err := mrcompile.Compile(plan, "tmp/codec")
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return w
}

// seedCodecData loads seeded random views/users tables: a shared name pool
// keeps joins and cogroups selective but non-empty.
func seedCodecData(t *testing.T, fs *dfs.FS, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	views := types.NewSchema(
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindInt},
	)
	var vrows []types.Tuple
	for i := 0; i < 120; i++ {
		vrows = append(vrows, types.Tuple{
			types.NewString(fmt.Sprintf("u%02d", rng.Intn(16))),
			types.NewInt(int64(rng.Intn(100))),
		})
	}
	if err := fs.WritePartitioned("data/views", views, vrows, 3); err != nil {
		t.Fatal(err)
	}
	users := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "phone", Kind: types.KindString},
	)
	var urows []types.Tuple
	for i := 0; i < 12; i++ {
		urows = append(urows, types.Tuple{
			types.NewString(fmt.Sprintf("u%02d", i)),
			types.NewString(fmt.Sprintf("555-%04d", rng.Intn(10000))),
		})
	}
	if err := fs.WritePartitioned("data/users", users, urows, 2); err != nil {
		t.Fatal(err)
	}
}

// codecQueries builds the seeded query set. Together the templates cover
// every operator kind the compiler emits (load, filter, foreach, split,
// store; group, cogroup, join, distinct, union, order, limit as blocking
// ops), the combiner path (COUNT/SUM over group), multi-job workflows, and a
// map-only job.
func codecQueries(rng *rand.Rand) []string {
	r := 10 + 10*rng.Intn(6)
	k := 3 + rng.Intn(7)
	dir := ""
	if rng.Intn(2) == 1 {
		dir = " desc"
	}
	return []string{
		// Group with algebraic aggregates: blocking Group + combiner.
		fmt.Sprintf(`A = load 'data/views' as (user, rev:int);
B = filter A by rev > %d;
G = group B by user;
R = foreach G generate group, COUNT(B), SUM(B.rev);
store R into 'out/group';`, r),
		// Join feeding order + limit: blocking Join, Order, Limit chain.
		fmt.Sprintf(`A = load 'data/views' as (user, rev:int);
U = load 'data/users' as (name, phone);
J = join U by name, A by user;
O = order J by name%s;
L = limit O %d;
store L into 'out/joinorder';`, dir, k),
		// Cogroup + ISEMPTY anti-join (paper L5 shape): blocking CoGroup.
		`A = load 'data/views' as (user, rev:int);
B = foreach A generate user;
U = load 'data/users' as (name, phone);
V = foreach U generate name;
C = cogroup V by name, B by user;
D = filter C by ISEMPTY(B);
E = foreach D generate group;
store E into 'out/cogroup';`,
		// Distinct + union + distinct (paper L11 shape): three jobs,
		// blocking Distinct and Union.
		`A = load 'data/views' as (user, rev:int);
B = foreach A generate user;
C = distinct B;
U = load 'data/users' as (name, phone);
V = foreach U generate name;
W = distinct V;
D = union C, W;
E = distinct D;
store E into 'out/union';`,
		// Map-only pipeline: no blocking operator at all.
		fmt.Sprintf(`A = load 'data/views' as (user, rev:int);
B = filter A by rev > %d;
C = foreach B generate user, rev;
store C into 'out/maponly';`, r),
	}
}

// TestCodecRoundTripProperty: for seeded workloads, every compiled job's wire
// envelope decodes to a job with the identical plan fingerprint, and the
// decoded workflow executes byte-identically to the original on an
// identically seeded DFS.
func TestCodecRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for qi, src := range codecQueries(rng) {
				w := compileSrc(t, src)

				// Per-job round trip: fingerprint identity.
				for _, job := range w.Jobs {
					fpBefore := mapred.PlanFingerprint(job.Plan)
					env, err := mapred.EncodeJob(job)
					if err != nil {
						t.Fatalf("q%d EncodeJob(%s): %v", qi, job.ID, err)
					}
					dec, err := mapred.DecodeJob(env)
					if err != nil {
						t.Fatalf("q%d DecodeJob(%s): %v", qi, job.ID, err)
					}
					if dec.ID != job.ID {
						t.Fatalf("q%d decoded ID = %q, want %q", qi, dec.ID, job.ID)
					}
					if fpAfter := mapred.PlanFingerprint(dec.Plan); fpAfter != fpBefore {
						t.Fatalf("q%d job %s fingerprint changed across the wire: %016x -> %016x",
							qi, job.ID, fpBefore, fpAfter)
					}
					// The blocking split must survive recompilation on the
					// far side.
					if (job.Blocking() == nil) != (dec.Blocking() == nil) {
						t.Fatalf("q%d job %s blocking presence diverged", qi, job.ID)
					}
					if job.Blocking() != nil && dec.Blocking().Kind != job.Blocking().Kind {
						t.Fatalf("q%d job %s blocking kind %s -> %s",
							qi, job.ID, job.Blocking().Kind, dec.Blocking().Kind)
					}
				}

				// Workflow round trip: the decoded workflow must execute
				// byte-identically to the original.
				wire, err := mapred.EncodeWorkflow(w)
				if err != nil {
					t.Fatalf("q%d EncodeWorkflow: %v", qi, err)
				}
				decW, err := mapred.DecodeWorkflow(wire)
				if err != nil {
					t.Fatalf("q%d DecodeWorkflow: %v", qi, err)
				}

				fsA, fsB := dfs.New(), dfs.New()
				seedCodecData(t, fsA, seed)
				seedCodecData(t, fsB, seed)
				if _, err := mapred.NewEngine(fsA, cluster.Default()).RunWorkflow(context.Background(), w); err != nil {
					t.Fatalf("q%d original run: %v", qi, err)
				}
				if _, err := mapred.NewEngine(fsB, cluster.Default()).RunWorkflow(context.Background(), decW); err != nil {
					t.Fatalf("q%d decoded run: %v", qi, err)
				}
				var bufA, bufB bytes.Buffer
				if err := fsA.Export(&bufA); err != nil {
					t.Fatal(err)
				}
				if err := fsB.Export(&bufB); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
					t.Fatalf("q%d decoded workflow diverged from original: %d vs %d exported bytes",
						qi, bufA.Len(), bufB.Len())
				}
			}
		})
	}
}

// TestCodecRejectsWrongVersionAndTamper pins the failure modes: an unknown
// wire version and a plan whose fingerprint does not match the envelope are
// both rejected.
func TestCodecRejectsWrongVersionAndTamper(t *testing.T) {
	w := compileSrc(t, `A = load 'data/views' as (user, rev:int);
G = group A by user;
R = foreach G generate group, COUNT(A);
store R into 'out/v';`)
	env, err := mapred.EncodeJob(w.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(field string, v any) []byte {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(env, &m); err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		m[field] = raw
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if _, err := mapred.DecodeJob(tamper("v", 99)); err == nil {
		t.Error("DecodeJob accepted an unknown wire version")
	}
	var fp uint64
	var m map[string]json.RawMessage
	if err := json.Unmarshal(env, &m); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(m["fp"], &fp); err != nil {
		t.Fatal(err)
	}
	if _, err := mapred.DecodeJob(tamper("fp", fp+1)); err == nil {
		t.Error("DecodeJob accepted a fingerprint mismatch")
	}
}
