package mapred

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/physical"
	"repro/internal/types"
)

// WireVersion is the version tag of the job wire envelope. A decoder that
// sees any other version refuses the payload, so protocol evolution is an
// explicit negotiation rather than silent misinterpretation.
const WireVersion = 1

// jobEnvelope is the versioned wire form of one compiled job: the operator
// graph (the physical plan serializes losslessly through its JSON form) plus
// the plan-wide fingerprint the decoder re-verifies. The map/reduce split is
// deliberately absent — NewJob recomputes it, so the two sides can never
// disagree about which operators run in which phase.
type jobEnvelope struct {
	Version     int                  `json:"v"`
	ID          string               `json:"id"`
	Plan        *physical.Plan       `json:"plan"`
	Fingerprint physical.Fingerprint `json:"fp"`
}

// workflowEnvelope is the versioned wire form of a workflow: its jobs'
// envelopes in order.
type workflowEnvelope struct {
	Version int               `json:"v"`
	Jobs    []json.RawMessage `json:"jobs"`
}

// PlanFingerprint folds every operator's Merkle fingerprint — and its ID, so
// renumbering or reshaping is detected even when signatures collide — into
// one plan-wide value. It keys the wire codec: DecodeJob re-derives it from
// the decoded plan and rejects any mismatch with the encoder's value.
func PlanFingerprint(p *physical.Plan) physical.Fingerprint {
	ix := physical.IndexPlan(p)
	h := fnv.New64a()
	var buf [8]byte
	for _, o := range p.Ops() {
		binary.LittleEndian.PutUint64(buf[:], uint64(o.ID))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(ix.Fingerprint(o.ID)))
		h.Write(buf[:])
	}
	return physical.Fingerprint(h.Sum64())
}

// EncodeJob serializes the job into the versioned wire envelope.
func EncodeJob(job *Job) ([]byte, error) {
	env := jobEnvelope{
		Version:     WireVersion,
		ID:          job.ID,
		Plan:        job.Plan,
		Fingerprint: PlanFingerprint(job.Plan),
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("mapred: encode job %s: %w", job.ID, err)
	}
	return data, nil
}

// DecodeJob reconstructs a job from its wire envelope: the plan is
// revalidated, the map/reduce split recomputed, and the plan fingerprint
// re-derived and checked against the encoder's, so a corrupted or mismatched
// payload fails loudly instead of executing a different plan.
func DecodeJob(data []byte) (*Job, error) {
	var env jobEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("mapred: decode job: %w", err)
	}
	if env.Version != WireVersion {
		return nil, fmt.Errorf("mapred: decode job %q: wire version %d, want %d", env.ID, env.Version, WireVersion)
	}
	if env.Plan == nil {
		return nil, fmt.Errorf("mapred: decode job %q: envelope has no plan", env.ID)
	}
	job, err := NewJob(env.ID, env.Plan)
	if err != nil {
		return nil, err
	}
	if got := PlanFingerprint(job.Plan); got != env.Fingerprint {
		return nil, fmt.Errorf("mapred: decode job %q: plan fingerprint %016x, envelope says %016x", env.ID, uint64(got), uint64(env.Fingerprint))
	}
	return job, nil
}

// EncodeWorkflow serializes every job of the workflow, in order, into one
// versioned envelope.
func EncodeWorkflow(w *Workflow) ([]byte, error) {
	env := workflowEnvelope{Version: WireVersion}
	for _, j := range w.Jobs {
		data, err := EncodeJob(j)
		if err != nil {
			return nil, err
		}
		env.Jobs = append(env.Jobs, data)
	}
	return json.Marshal(env)
}

// DecodeWorkflow reconstructs a workflow from its wire envelope, decoding
// (and fingerprint-checking) every job.
func DecodeWorkflow(data []byte) (*Workflow, error) {
	var env workflowEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("mapred: decode workflow: %w", err)
	}
	if env.Version != WireVersion {
		return nil, fmt.Errorf("mapred: decode workflow: wire version %d, want %d", env.Version, WireVersion)
	}
	w := &Workflow{}
	for i, raw := range env.Jobs {
		job, err := DecodeJob(raw)
		if err != nil {
			return nil, fmt.Errorf("mapred: decode workflow job %d: %w", i, err)
		}
		w.Jobs = append(w.Jobs, job)
	}
	return w, nil
}

// encodeRun appends the run's records in the binary shuffle-run wire format:
// per record, a uvarint-framed EncodeTuple key, uvarint tag, uvarint seq,
// and a uvarint-framed EncodeTuple value.
func encodeRun(dst []byte, recs []shuffleRec) []byte {
	var lenbuf [10]byte
	var scratch []byte
	for _, rec := range recs {
		scratch = types.EncodeTuple(scratch[:0], rec.key)
		n := putUvarint(lenbuf[:], uint64(len(scratch)))
		dst = append(dst, lenbuf[:n]...)
		dst = append(dst, scratch...)
		n = putUvarint(lenbuf[:], uint64(rec.tag))
		dst = append(dst, lenbuf[:n]...)
		n = putUvarint(lenbuf[:], uint64(rec.seq))
		dst = append(dst, lenbuf[:n]...)
		scratch = types.EncodeTuple(scratch[:0], rec.val)
		n = putUvarint(lenbuf[:], uint64(len(scratch)))
		dst = append(dst, lenbuf[:n]...)
		dst = append(dst, scratch...)
	}
	return dst
}

// decodeRun parses an encoded shuffle run into dst, returning an error on
// any truncation or framing damage (how a torn shuffle pull surfaces).
func decodeRun(data []byte, dst []shuffleRec) ([]shuffleRec, error) {
	readFramed := func() (types.Tuple, error) {
		ln, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < ln {
			return nil, fmt.Errorf("truncated frame")
		}
		buf := data[n : n+int(ln)]
		data = data[n+int(ln):]
		t, used, err := types.DecodeTuple(buf)
		if err != nil {
			return nil, err
		}
		if used != len(buf) {
			return nil, fmt.Errorf("frame has %d trailing bytes", len(buf)-used)
		}
		return t, nil
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("truncated varint")
		}
		data = data[n:]
		return v, nil
	}
	for len(data) > 0 {
		key, err := readFramed()
		if err != nil {
			return nil, fmt.Errorf("mapred: decode run record %d key: %w", len(dst), err)
		}
		tag, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("mapred: decode run record %d tag: %w", len(dst), err)
		}
		seq, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("mapred: decode run record %d seq: %w", len(dst), err)
		}
		val, err := readFramed()
		if err != nil {
			return nil, fmt.Errorf("mapred: decode run record %d value: %w", len(dst), err)
		}
		dst = append(dst, shuffleRec{key: key, tag: int(tag), seq: int64(seq), val: val})
	}
	return dst, nil
}
