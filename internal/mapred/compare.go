package mapred

import (
	"repro/internal/physical"
	"repro/internal/types"
)

// jobComparator is the shuffle ordering of one job — key (respecting
// Order's per-column sort directions), then input tag, then sequence
// number — compiled once per job instead of being rebuilt as a closure
// chain per comparison. Key columns go through types.CompareColumn, whose
// order is identical to types.Compare's, so the compiled order matches the
// closure-based sortShuffle order exactly; the seq component is globally
// unique (taskIdx<<32|n), which makes the whole order strict and lets both
// the run sort and the k-way merge be non-stable without changing output.
type jobComparator struct {
	// desc holds Order's per-column direction flags; nil for every other
	// blocking kind, where keys compare with full CompareTuples semantics
	// (lexicographic, shorter-first tiebreak).
	desc []bool
}

// compileComparator derives the job's comparator from its blocking operator
// (nil for map-only jobs, which never sort a shuffle).
func compileComparator(b *physical.Operator) *jobComparator {
	if b == nil || b.Kind != physical.OpOrder {
		return &jobComparator{}
	}
	desc := make([]bool, len(b.SortCols))
	for i, sc := range b.SortCols {
		desc[i] = sc.Desc
	}
	return &jobComparator{desc: desc}
}

// compareKey orders two shuffle keys.
func (c *jobComparator) compareKey(x, y types.Tuple) int {
	if c.desc != nil {
		// Order keys always have len(SortCols) columns (blockingKey pads
		// with nulls), mirroring sortShuffle's i<len guard.
		for i, d := range c.desc {
			var v int
			if i < len(x) && i < len(y) {
				v = types.CompareColumn(x[i], y[i])
			}
			if d {
				v = -v
			}
			if v != 0 {
				return v
			}
		}
		return 0
	}
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		if v := types.CompareColumn(x[i], y[i]); v != 0 {
			return v
		}
	}
	switch {
	case len(x) < len(y):
		return -1
	case len(x) > len(y):
		return 1
	default:
		return 0
	}
}

// compareRec orders two shuffle records by (key, tag, seq).
func (c *jobComparator) compareRec(x, y *shuffleRec) int {
	if v := c.compareKey(x.key, y.key); v != 0 {
		return v
	}
	if x.tag != y.tag {
		if x.tag < y.tag {
			return -1
		}
		return 1
	}
	switch {
	case x.seq < y.seq:
		return -1
	case x.seq > y.seq:
		return 1
	default:
		return 0
	}
}

// recSorter sorts a shuffle run in comparator order without the per-swap
// reflection of sort.SliceStable (and without stability, which the strict
// order makes unnecessary).
type recSorter struct {
	recs []shuffleRec
	cmp  *jobComparator
}

func (s recSorter) Len() int { return len(s.recs) }
func (s recSorter) Less(i, j int) bool {
	return s.cmp.compareRec(&s.recs[i], &s.recs[j]) < 0
}
func (s recSorter) Swap(i, j int) { s.recs[i], s.recs[j] = s.recs[j], s.recs[i] }
