package mapred

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/physical"
	"repro/internal/types"
)

// RunKernelBench measures the reduce-side ordering kernel for the
// server-engine benchmark: `rounds` rounds over nRuns synthetic shuffle runs
// of runLen records each, returning the best (minimum) round's wall time and
// bytes allocated inside its measured section — the min filters out rounds a
// concurrent GC cycle happened to land in, and the heap is flushed before
// each round for the same reason. With serial=true it runs the serial
// reference (concatenate all runs into one freshly allocated buffer, one
// closure-driven stable sort — the pre-optimization data plane); otherwise
// the default plane's kernel (per-run compiled-comparator sort, k-way merge
// into a pooled buffer). One untimed warmup round precedes measurement so
// buffer pools are populated, matching the steady state a long-lived daemon
// runs in. Input cloning between rounds is excluded from both metrics.
func RunKernelBench(nRuns, runLen, rounds int, serial bool) (wall time.Duration, allocBytes uint64) {
	rng := rand.New(rand.NewSource(7))
	base := make([][]shuffleRec, nRuns)
	seq := int64(0)
	for r := range base {
		run := make([]shuffleRec, runLen)
		for i := range run {
			run[i] = shuffleRec{
				key: types.Tuple{
					types.NewInt(int64(rng.Intn(64))),
					types.NewString(fmt.Sprintf("u%03d", rng.Intn(128))),
				},
				seq: seq,
				val: types.Tuple{types.NewInt(int64(rng.Intn(1000)))},
			}
			seq++
		}
		base[r] = run
	}
	clone := func() [][]shuffleRec {
		out := make([][]shuffleRec, len(base))
		for i, r := range base {
			out[i] = append([]shuffleRec(nil), r...)
		}
		return out
	}
	// The blocking operator only steers the comparator; any non-Order kind
	// yields the generic CompareTuples ordering both planes use for groups.
	blocking := &physical.Operator{Kind: physical.OpGroup}
	cmp := compileComparator(blocking)
	total := nRuns * runLen
	round := func(runs [][]shuffleRec) {
		if serial {
			buf := make([]shuffleRec, 0, total)
			for _, r := range runs {
				buf = append(buf, r...)
			}
			sortShuffle(blocking, buf)
			return
		}
		for _, r := range runs {
			sortRun(cmp, r)
		}
		merged := mergeRuns(cmp, runs, getRecSlice(total))
		putRecSlice(merged)
		for _, r := range runs {
			putRecSlice(r)
		}
	}
	round(clone()) // warmup: populate pools, fault in the comparator path
	var ms runtime.MemStats
	for i := 0; i < rounds; i++ {
		runs := clone()
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now()
		round(runs)
		w := time.Since(start)
		runtime.ReadMemStats(&ms)
		a := ms.TotalAlloc - before
		if i == 0 || w < wall {
			wall = w
		}
		if i == 0 || a < allocBytes {
			allocBytes = a
		}
	}
	return wall, allocBytes
}
