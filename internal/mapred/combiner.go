package mapred

import (
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// Combiner support. Pig evaluates algebraic aggregates (COUNT, SUM, MIN,
// MAX) with Hadoop combiners: map tasks pre-aggregate per group key and ship
// one partial record per key instead of the full bag. The engine applies the
// same optimization when a job's plan has the shape
//
//	Group -> Foreach(only group-key refs and algebraic aggregates) -> ...
//
// and the Group's output is not consumed by anything else — in particular, a
// ReStore-injected Store after the Group forces the full bags to be shipped
// and disables the combiner, which is precisely why the paper observes a
// large materialization overhead for group-heavy queries like L6.

// combKind is the merge function of one combined column.
type combKind uint8

const (
	combKey combKind = iota
	combCount
	combSum
	combMin
	combMax
)

// combAgg is one output column of the combined Foreach.
type combAgg struct {
	kind combKind
	// proj is the bag-projection column for sum/min/max (or the counted
	// column; -1 when the whole bag is counted).
	proj int
}

// combineSpec describes a combinable Group->Foreach pair.
type combineSpec struct {
	group   *physical.Operator
	foreach *physical.Operator
	aggs    []combAgg
}

// detectCombiner returns the combine plan for the job, or nil when the job
// is not combinable.
func detectCombiner(job *Job) *combineSpec {
	g := job.Blocking()
	if g == nil || g.Kind != physical.OpGroup {
		return nil
	}
	consumers := job.Plan.Consumers(g.ID)
	if len(consumers) != 1 || consumers[0].Kind != physical.OpForeach {
		return nil
	}
	fe := consumers[0]
	if len(fe.Nested) > 0 {
		return nil
	}
	spec := &combineSpec{group: g, foreach: fe}
	for _, e := range fe.Exprs {
		agg, ok := classifyCombExpr(e)
		if !ok {
			return nil
		}
		spec.aggs = append(spec.aggs, agg)
	}
	return spec
}

func classifyCombExpr(e *expr.Expr) (combAgg, bool) {
	// Group-key reference: column 0 of the grouped schema.
	if e.Op == expr.OpCol {
		if e.Index == 0 {
			return combAgg{kind: combKey}, true
		}
		return combAgg{}, false
	}
	if e.Op != expr.OpCall || len(e.Args) != 1 {
		return combAgg{}, false
	}
	arg := e.Args[0]
	proj := -1
	switch arg.Op {
	case expr.OpCol:
		if arg.Index != 1 {
			return combAgg{}, false
		}
	case expr.OpBagProj:
		if arg.Args[0].Op != expr.OpCol || arg.Args[0].Index != 1 || arg.Index < 0 {
			return combAgg{}, false
		}
		proj = arg.Index
	default:
		return combAgg{}, false
	}
	switch e.Name {
	case "COUNT":
		return combAgg{kind: combCount, proj: proj}, true
	case "SUM":
		if proj < 0 {
			return combAgg{}, false
		}
		return combAgg{kind: combSum, proj: proj}, true
	case "MIN":
		if proj < 0 {
			return combAgg{}, false
		}
		return combAgg{kind: combMin, proj: proj}, true
	case "MAX":
		if proj < 0 {
			return combAgg{}, false
		}
		return combAgg{kind: combMax, proj: proj}, true
	default:
		return combAgg{}, false
	}
}

// partialState accumulates one map task's partials for one group key.
type partialState struct {
	key  types.Tuple
	vals []types.Value // one per agg (key slots stay null)
}

// combAccumulator is the per-map-task combiner.
type combAccumulator struct {
	spec    *combineSpec
	states  map[string]*partialState
	order   []string // deterministic flush order (insertion)
	scratch []byte   // reused key-encoding buffer
}

func newCombAccumulator(spec *combineSpec) *combAccumulator {
	return &combAccumulator{spec: spec, states: make(map[string]*partialState)}
}

// add folds one pre-shuffle tuple into the partial for its key. The key may
// alias a caller-owned scratch tuple: add encodes it into a reused buffer
// for the map probe (the compiler elides the string conversion in map
// lookups) and clones both the encoded string and the tuple only when the
// key is seen for the first time.
func (a *combAccumulator) add(key types.Tuple, t types.Tuple) {
	a.scratch = types.EncodeTuple(a.scratch[:0], key)
	st, ok := a.states[string(a.scratch)]
	if !ok {
		ks := string(a.scratch)
		st = &partialState{key: key.Clone(), vals: make([]types.Value, len(a.spec.aggs))}
		for i, agg := range a.spec.aggs {
			if agg.kind == combCount {
				st.vals[i] = types.NewInt(0)
			}
		}
		a.states[ks] = st
		a.order = append(a.order, ks)
	}
	for i, agg := range a.spec.aggs {
		switch agg.kind {
		case combKey:
		case combCount:
			st.vals[i] = types.NewInt(st.vals[i].Int() + 1)
		case combSum:
			st.vals[i] = mergeSum(st.vals[i], fieldOf(t, agg.proj))
		case combMin:
			st.vals[i] = mergeBest(st.vals[i], fieldOf(t, agg.proj), -1)
		case combMax:
			st.vals[i] = mergeBest(st.vals[i], fieldOf(t, agg.proj), 1)
		}
	}
}

func fieldOf(t types.Tuple, i int) types.Value {
	if i < 0 || i >= len(t) {
		return types.Null()
	}
	return t[i]
}

// mergeSum adds v into acc with Pig semantics: nulls are skipped, integer
// sums stay integers until a float joins.
func mergeSum(acc, v types.Value) types.Value {
	if v.IsNull() {
		return acc
	}
	f, ok := types.CoerceFloat(v)
	if !ok {
		return acc
	}
	if acc.IsNull() {
		if v.Kind() == types.KindInt {
			return types.NewInt(v.Int())
		}
		return types.NewFloat(f)
	}
	if acc.Kind() == types.KindInt && v.Kind() == types.KindInt {
		return types.NewInt(acc.Int() + v.Int())
	}
	af, _ := types.CoerceFloat(acc)
	return types.NewFloat(af + f)
}

// mergeBest keeps the smaller (dir<0) or larger (dir>0) non-null value.
func mergeBest(acc, v types.Value, dir int) types.Value {
	if v.IsNull() {
		return acc
	}
	if acc.IsNull() {
		return v
	}
	if c := types.Compare(v, acc); (dir < 0 && c < 0) || (dir > 0 && c > 0) {
		return v
	}
	return acc
}

// mergePartials combines two partial tuples (reduce side).
func (s *combineSpec) mergePartials(acc, v types.Tuple) types.Tuple {
	out := make(types.Tuple, len(acc))
	for i, agg := range s.aggs {
		switch agg.kind {
		case combKey:
			out[i] = types.Null()
		case combCount:
			out[i] = types.NewInt(acc[i].Int() + v[i].Int())
		case combSum:
			out[i] = mergeSum(acc[i], v[i])
		case combMin:
			out[i] = mergeBest(acc[i], v[i], -1)
		case combMax:
			out[i] = mergeBest(acc[i], v[i], 1)
		}
	}
	return out
}

// finalize renders the Foreach's output tuple for one key from the merged
// partials.
func (s *combineSpec) finalize(key types.Tuple, merged types.Tuple) types.Tuple {
	out := make(types.Tuple, len(s.aggs))
	for i, agg := range s.aggs {
		if agg.kind == combKey {
			out[i] = groupValue(s.group, key)
			continue
		}
		v := merged[i]
		if agg.kind == combCount && v.IsNull() {
			v = types.NewInt(0)
		}
		out[i] = v
	}
	return out
}
