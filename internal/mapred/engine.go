package mapred

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/exec"
	"repro/internal/physical"
	"repro/internal/types"
)

// Engine executes jobs against a DFS and costs them with a cluster model.
//
// The data plane shuffles the way Hadoop does: each map task sorts its
// per-reduce-partition output runs locally (inside the map-task pool), the
// reduce side k-way-merges the pre-sorted runs, and reduce partitions run
// on their own bounded worker pool. The shuffle order — (key, tag, seq),
// compiled per job into a jobComparator — is strict (seq is globally
// unique), so none of that parallelism or the non-stable sorts can change
// output bytes; SerialDataPlane keeps the one-buffer-per-partition,
// stable-sort, sequential-reduce implementation around as the differential
// oracle and benchmark baseline.
type Engine struct {
	FS      *dfs.FS
	Cluster *cluster.Config
	// ReduceTasks is the number of real reduce partitions (execution
	// parallelism, independent of the simulated reduce-task count).
	ReduceTasks int
	// MapParallelism bounds concurrent map tasks; 0 means GOMAXPROCS.
	MapParallelism int
	// ReduceParallelism bounds concurrent reduce partitions; 0 means
	// GOMAXPROCS. Partitions are independent (hash-partitioned by key and
	// committed to distinct file partitions), so the pool changes wall
	// clock only, never output.
	ReduceParallelism int
	// SerialDataPlane selects the serial single-sort reference
	// implementation: one concatenated shuffle buffer per reduce
	// partition, stable-sorted from scratch with the closure comparator,
	// reduce partitions executed sequentially, no buffer pooling. The
	// differential oracle tests pin the default data plane byte-identical
	// to it, and the server-engine benchmark uses it as the pre-PR
	// baseline.
	SerialDataPlane bool
	// DisableCombiner turns off map-side combining of algebraic aggregates
	// (used by tests to verify the combined and uncombined paths agree).
	DisableCombiner bool
	// LatencyScale emulates driving a remote cluster: after each job the
	// engine sleeps LatencyScale * the job's simulated time, so wall clock
	// reflects cluster occupancy instead of just local CPU. 0 disables.
	// In the paper's deployment the daemon is an orchestrator — Hadoop
	// jobs take minutes on the cluster while the client CPU idles — and
	// this knob is what lets benchmarks reproduce that regime: a FIFO
	// scheduler serializes the waits, a concurrent one overlaps them.
	LatencyScale float64

	// runHint is the observed mean shuffle-run length of the engine's most
	// recent reduce job; map tasks pre-size their run buffers from it so
	// steady-state workloads skip the append growth path.
	runHint atomic.Int64
}

// DefaultReduceTasks is the reduce partition count NewEngine configures.
const DefaultReduceTasks = 4

// NewEngine returns an engine with default execution parallelism.
func NewEngine(fs *dfs.FS, c *cluster.Config) *Engine {
	return &Engine{FS: fs, Cluster: c, ReduceTasks: DefaultReduceTasks}
}

// JobResult reports the real counters and simulated timing of one job.
type JobResult struct {
	JobID string
	Stats cluster.JobStats
	Times cluster.Times
	// StoreBytes maps every written output path to its logical bytes.
	StoreBytes map[string]int64
	// InjectedStoreBytes is the total written by ReStore-injected stores —
	// the materialization overhead the paper measures.
	InjectedStoreBytes int64
}

// shuffleRec is one map-output record: a key, the input branch tag, a
// sequence number for deterministic ordering, and the value tuple.
type shuffleRec struct {
	key types.Tuple
	tag int
	seq int64
	val types.Tuple
}

// mapTask identifies one unit of map work: a Load operator and one partition
// of its input file.
type mapTask struct {
	loadID    int
	partition int
	taskIdx   int
}

// RunJob executes the job and returns its statistics and simulated times.
func (e *Engine) RunJob(job *Job) (*JobResult, error) {
	tasks, err := e.planMapTasks(job)
	if err != nil {
		return nil, err
	}
	reduceParts := e.ReduceTasks
	if reduceParts < 1 {
		reduceParts = 1
	}
	if b := job.Blocking(); b != nil && (b.Kind == physical.OpOrder || b.Kind == physical.OpLimit) {
		// Total order and exact limits need a single reduce partition.
		reduceParts = 1
	}

	// Create output files: map-side stores get one partition per map task,
	// reduce-side stores one per reduce partition.
	mapStores, reduceStores := e.splitStores(job)
	for _, st := range mapStores {
		if _, err := e.FS.Create(st.Path, len(tasks)); err != nil {
			return nil, err
		}
		if err := e.FS.SetSchema(st.Path, st.Schema); err != nil {
			return nil, err
		}
	}
	for _, st := range reduceStores {
		if _, err := e.FS.Create(st.Path, reduceParts); err != nil {
			return nil, err
		}
		if err := e.FS.SetSchema(st.Path, st.Schema); err != nil {
			return nil, err
		}
	}

	var comb *combineSpec
	if !e.DisableCombiner {
		comb = detectCombiner(job)
	}

	res := &JobResult{JobID: job.ID, StoreBytes: make(map[string]int64)}
	cmp := compileComparator(job.Blocking())
	runs, err := e.runMapPhase(job, tasks, reduceParts, comb, cmp, res)
	if err != nil {
		return nil, err
	}
	if job.Blocking() != nil {
		res.Stats.HasReduce = true
		if err := e.runReducePhase(job, runs, reduceParts, comb, cmp, res); err != nil {
			return nil, err
		}
	}

	// Collect per-store byte counts and classify them for the cost model.
	for _, st := range job.Plan.Sinks() {
		stat, err := e.FS.StatFile(st.Path)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: stat output %s: %w", job.ID, st.Path, err)
		}
		res.StoreBytes[st.Path] = stat.Bytes
		onMapSide := job.MapSide(st.ID)
		if st.Injected {
			res.Stats.InjectedStores++
		}
		switch {
		case st.Injected && onMapSide:
			res.Stats.MapStoreBytes += stat.Bytes
			res.InjectedStoreBytes += stat.Bytes
		case st.Injected:
			res.Stats.ReduceStoreBytes += stat.Bytes
			res.InjectedStoreBytes += stat.Bytes
		case onMapSide && job.Blocking() != nil:
			// A primary store on the map side of a reduce job still costs
			// map-phase writes.
			res.Stats.MapStoreBytes += stat.Bytes
		default:
			res.Stats.OutputBytes += stat.Bytes
		}
	}
	res.Times = e.Cluster.Simulate(res.Stats)
	if e.LatencyScale > 0 {
		time.Sleep(time.Duration(float64(res.Times.Total) * e.LatencyScale))
	}
	return res, nil
}

// planMapTasks enumerates (load, partition) pairs.
func (e *Engine) planMapTasks(job *Job) ([]mapTask, error) {
	var tasks []mapTask
	for _, load := range job.Plan.Sources() {
		n, err := e.FS.Partitions(load.Path)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: input %s: %w", job.ID, load.Path, err)
		}
		for p := 0; p < n; p++ {
			tasks = append(tasks, mapTask{loadID: load.ID, partition: p, taskIdx: len(tasks)})
		}
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("mapred: job %s has no input partitions", job.ID)
	}
	return tasks, nil
}

func (e *Engine) splitStores(job *Job) (mapStores, reduceStores []*physical.Operator) {
	for _, st := range job.Plan.Sinks() {
		if job.MapSide(st.ID) {
			mapStores = append(mapStores, st)
		} else {
			reduceStores = append(reduceStores, st)
		}
	}
	return mapStores, reduceStores
}

// taskOutput buffers one task's writes to one store.
type taskOutput struct {
	buf     []byte
	scratch []byte
	records int64
}

func (o *taskOutput) write(t types.Tuple) {
	o.scratch = types.EncodeTuple(o.scratch[:0], t)
	var lenbuf [10]byte
	n := putUvarint(lenbuf[:], uint64(len(o.scratch)))
	o.buf = append(o.buf, lenbuf[:n]...)
	o.buf = append(o.buf, o.scratch...)
	o.records++
}

func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

// runMapPhase executes all map tasks (bounded parallelism), commits the
// map-side store partitions deterministically, and returns each reduce
// partition's shuffle runs: the per-task locally sorted runs on the default
// plane, or a single concatenated unsorted buffer on the serial one. Task
// failures are all collected — a multi-task failure reports every task's
// error (in task order), not an arbitrary one.
func (e *Engine) runMapPhase(job *Job, tasks []mapTask, reduceParts int, comb *combineSpec, cmp *jobComparator, res *JobResult) ([][][]shuffleRec, error) {
	mapStores, _ := e.splitStores(job)
	blocking := job.Blocking()

	// Per-task results and errors, merged deterministically afterwards.
	results := make([]*mapTaskResult, len(tasks))
	taskErrs := make([]error, len(tasks))

	par := e.MapParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(task mapTask) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tr, err := e.runMapTask(job, task, blocking, mapStores, reduceParts, comb, cmp)
			if err != nil {
				taskErrs[task.taskIdx] = fmt.Errorf("mapred: job %s map task %d: %w", job.ID, task.taskIdx, err)
				return
			}
			results[task.taskIdx] = tr
		}(task)
	}
	wg.Wait()
	if err := errors.Join(taskErrs...); err != nil {
		return nil, err
	}

	// Commit map-side store partitions and collect shuffle runs.
	runs := make([][][]shuffleRec, reduceParts)
	pooled := !e.SerialDataPlane
	var serial [][]shuffleRec
	if !pooled {
		serial = make([][]shuffleRec, reduceParts)
	}
	var totalRecs, nRuns int
	for idx, tr := range results {
		for path, out := range tr.stores {
			if err := e.FS.CommitPartition(path, idx, out.buf, out.records); err != nil {
				return nil, err
			}
			if pooled {
				putScratch(out.scratch)
			}
		}
		for r := 0; r < reduceParts; r++ {
			if tr.shuffle == nil || len(tr.shuffle[r]) == 0 {
				continue
			}
			if pooled {
				runs[r] = append(runs[r], tr.shuffle[r])
				totalRecs += len(tr.shuffle[r])
				nRuns++
			} else {
				serial[r] = append(serial[r], tr.shuffle[r]...)
			}
		}
		res.Stats.InputBytes += tr.inputBytes
		res.Stats.ShuffleBytes += tr.shuffleLen
	}
	if pooled {
		if nRuns > 0 {
			e.runHint.Store(int64(totalRecs/nRuns + 1))
		}
	} else {
		for r := range serial {
			runs[r] = [][]shuffleRec{serial[r]}
		}
	}
	return runs, nil
}

// mapTaskResult buffers one map task's outputs until the deterministic
// merge/commit step.
type mapTaskResult struct {
	shuffle    [][]shuffleRec // per reduce partition
	stores     map[string]*taskOutput
	inputBytes int64
	shuffleLen int64 // encoded shuffle bytes
}

func (e *Engine) runMapTask(job *Job, task mapTask, blocking *physical.Operator, mapStores []*physical.Operator, reduceParts int, comb *combineSpec, cmp *jobComparator) (*mapTaskResult, error) {
	tr := &mapTaskResult{stores: make(map[string]*taskOutput)}
	pipe := exec.NewPipeline(job.Plan, job.mapSide)
	pooled := !e.SerialDataPlane
	runHint := 0
	if pooled {
		runHint = int(e.runHint.Load())
	}

	// Wire map-side stores: every task owns one partition of each.
	for _, st := range mapStores {
		out := &taskOutput{}
		if pooled {
			out.scratch = getScratch()
		}
		tr.stores[st.Path] = out
		if err := pipe.SetOutput(st.ID, func(t types.Tuple) error {
			out.write(t)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Wire shuffle collectors on the producers feeding the blocking op.
	var seq int64
	var scratch []byte
	if pooled {
		scratch = getScratch()
		defer func() { putScratch(scratch) }()
	}
	push := func(r int, rec shuffleRec) {
		run := tr.shuffle[r]
		if pooled && cap(run) == 0 {
			run = getRecSlice(runHint)
		}
		tr.shuffle[r] = append(run, rec)
	}
	collect := func(key, val types.Tuple) {
		r := 0
		if reduceParts > 1 {
			r = int(types.HashTuple(key) % uint64(reduceParts))
		}
		push(r, shuffleRec{key: key, seq: int64(task.taskIdx)<<32 | seq, val: val})
		seq++
		scratch = types.EncodeTuple(scratch[:0], key)
		tr.shuffleLen += int64(len(scratch))
		scratch = types.EncodeTuple(scratch[:0], val)
		tr.shuffleLen += int64(len(scratch))
	}
	var acc *combAccumulator
	if blocking != nil {
		tr.shuffle = make([][]shuffleRec, reduceParts)
		if comb != nil {
			acc = newCombAccumulator(comb)
		}
		for tag, inID := range blocking.Inputs {
			tag := tag
			var keyScratch types.Tuple
			emit := func(t types.Tuple) error {
				if acc != nil {
					// The combiner clones the key on first sight of a
					// group, so the evaluation can reuse one scratch tuple
					// for the whole task instead of allocating per record.
					keyScratch = blockingKeyInto(keyScratch, blocking, tag, t)
					acc.add(keyScratch, t)
					return nil
				}
				key := blockingKey(blocking, tag, t)
				if blocking.Kind == physical.OpJoin && exec.KeyHasNull(key) {
					return nil // null join keys never match
				}
				r := 0
				if reduceParts > 1 {
					r = int(types.HashTuple(key) % uint64(reduceParts))
				}
				push(r, shuffleRec{key: key, tag: tag, seq: int64(task.taskIdx)<<32 | seq, val: t})
				seq++
				scratch = types.EncodeTuple(scratch[:0], key)
				tr.shuffleLen += int64(len(scratch))
				scratch = types.EncodeTuple(scratch[:0], t)
				tr.shuffleLen += int64(len(scratch))
				return nil
			}
			if err := pipe.SetOutput(inID, emit); err != nil {
				return nil, err
			}
		}
	}
	if err := pipe.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline for %s: %w", job.ID, err)
	}

	// Stream the input partition through the pipeline.
	r, nbytes, err := e.FS.OpenPartition(job.Plan.Op(task.loadID).Path, task.partition)
	if err != nil {
		return nil, err
	}
	tr.inputBytes = nbytes
	for {
		t, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := pipe.Push(task.loadID, t); err != nil {
			return nil, err
		}
	}
	// Flush combined partials: one shuffle record per group key.
	if acc != nil {
		for _, ks := range acc.order {
			st := acc.states[ks]
			collect(st.key, st.vals)
		}
	}
	// Local sort: ship each reduce partition's run already ordered, so the
	// reduce side merges instead of re-sorting. Runs from different tasks
	// sort concurrently inside the map-task pool.
	if pooled && tr.shuffle != nil {
		for r := range tr.shuffle {
			sortRun(cmp, tr.shuffle[r])
		}
	}
	return tr, nil
}

// blockingKey computes the shuffle key for one record entering the blocking
// operator on the given input tag.
func blockingKey(b *physical.Operator, tag int, t types.Tuple) types.Tuple {
	switch b.Kind {
	case physical.OpJoin, physical.OpCoGroup:
		return exec.EvalKey(b.Keys[tag], t)
	case physical.OpGroup:
		if len(b.Keys) == 0 || len(b.Keys[0]) == 0 {
			return types.Tuple{} // GROUP ALL
		}
		return exec.EvalKey(b.Keys[0], t)
	case physical.OpDistinct:
		return t
	case physical.OpOrder:
		key := make(types.Tuple, len(b.SortCols))
		for i, sc := range b.SortCols {
			if sc.Index < len(t) {
				key[i] = t[sc.Index]
			} else {
				key[i] = types.Null()
			}
		}
		return key
	case physical.OpLimit:
		return types.Tuple{}
	default:
		return types.Tuple{}
	}
}

// blockingKeyInto is blockingKey evaluated into a reusable scratch tuple.
// The caller must not retain the result across calls (the combiner clones
// it when a new group is first seen).
func blockingKeyInto(dst types.Tuple, b *physical.Operator, tag int, t types.Tuple) types.Tuple {
	switch b.Kind {
	case physical.OpJoin, physical.OpCoGroup:
		return exec.EvalKeyInto(dst, b.Keys[tag], t)
	case physical.OpGroup:
		if len(b.Keys) == 0 || len(b.Keys[0]) == 0 {
			return dst[:0] // GROUP ALL
		}
		return exec.EvalKeyInto(dst, b.Keys[0], t)
	default:
		return append(dst[:0], blockingKey(b, tag, t)...)
	}
}

// runReducePhase applies the blocking operator (or merges combiner
// partials) per reduce partition and streams results through the
// reduce-side pipeline. On the default plane each partition k-way-merges
// its pre-sorted map runs and partitions execute on the ReduceParallelism
// worker pool — partitions are independent (distinct keys, distinct output
// file partitions), so concurrency changes wall clock only. The serial
// plane keeps the reference behavior: concatenated buffer, stable
// single-sort, sequential partitions.
func (e *Engine) runReducePhase(job *Job, runs [][][]shuffleRec, reduceParts int, comb *combineSpec, cmp *jobComparator, res *JobResult) error {
	blocking := job.Blocking()
	_, reduceStores := e.splitStores(job)
	include := make(map[int]bool, len(job.reduceSide)+1)
	include[blocking.ID] = true
	for id := range job.reduceSide {
		include[id] = true
	}

	if e.SerialDataPlane {
		for r := 0; r < reduceParts; r++ {
			var recs []shuffleRec
			if len(runs[r]) > 0 {
				recs = runs[r][0]
			}
			sortShuffle(blocking, recs)
			if err := e.runReducePartition(job, blocking, include, reduceStores, comb, r, recs, false); err != nil {
				return err
			}
		}
		return nil
	}

	workers := e.ReduceParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reduceParts {
		workers = reduceParts
	}
	partErrs := make([]error, reduceParts)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for r := 0; r < reduceParts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			total := 0
			for _, run := range runs[r] {
				total += len(run)
			}
			merged := mergeRuns(cmp, runs[r], getRecSlice(total))
			partErrs[r] = e.runReducePartition(job, blocking, include, reduceStores, comb, r, merged, true)
			putRecSlice(merged)
			for _, run := range runs[r] {
				putRecSlice(run)
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(partErrs...)
}

// runReducePartition executes one reduce partition: pipeline wiring, the
// blocking operator (or combiner finalization) over its sorted records, and
// the partition commit. pooled gates the encode-scratch pooling so the
// serial oracle plane keeps its reference allocation behavior.
func (e *Engine) runReducePartition(job *Job, blocking *physical.Operator, include map[int]bool, reduceStores []*physical.Operator, comb *combineSpec, r int, recs []shuffleRec, pooled bool) error {
	pipe := exec.NewPipeline(job.Plan, include)
	outs := make(map[string]*taskOutput)
	for _, st := range reduceStores {
		out := &taskOutput{}
		if pooled {
			out.scratch = getScratch()
		}
		outs[st.Path] = out
		if err := pipe.SetOutput(st.ID, func(t types.Tuple) error {
			out.write(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if err := pipe.Validate(); err != nil {
		return fmt.Errorf("mapred: job %s reduce pipeline: %w", job.ID, err)
	}

	if comb != nil {
		// Merge combiner partials per key and emit the Foreach's
		// output directly, bypassing bag construction.
		emitFE := func(t types.Tuple) error { return pipe.PushOutputOf(comb.foreach.ID, t) }
		if err := applyCombined(comb, recs, emitFE); err != nil {
			return fmt.Errorf("mapred: job %s reduce %d: %w", job.ID, r, err)
		}
	} else {
		emit := func(t types.Tuple) error { return pipe.PushOutputOf(blocking.ID, t) }
		if err := applyBlocking(blocking, recs, emit); err != nil {
			return fmt.Errorf("mapred: job %s reduce %d: %w", job.ID, r, err)
		}
	}
	for path, out := range outs {
		if err := e.FS.CommitPartition(path, r, out.buf, out.records); err != nil {
			return err
		}
		if pooled {
			putScratch(out.scratch)
		}
	}
	return nil
}

// sortShuffle orders records by key (respecting Order's sort directions),
// then tag, then sequence — the merge-sort Hadoop performs between map and
// reduce. This is the serial reference plane's from-scratch stable sort;
// the default plane reaches the same order (the (key, tag, seq) order is
// strict, making stability vacuous) by merging locally sorted runs with the
// compiled jobComparator.
func sortShuffle(b *physical.Operator, recs []shuffleRec) {
	cmpKey := func(a, bk types.Tuple) int { return types.CompareTuples(a, bk) }
	if b.Kind == physical.OpOrder {
		cmpKey = func(x, y types.Tuple) int {
			for i, sc := range b.SortCols {
				var c int
				if i < len(x) && i < len(y) {
					c = types.Compare(x[i], y[i])
				}
				if sc.Desc {
					c = -c
				}
				if c != 0 {
					return c
				}
			}
			return 0
		}
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if c := cmpKey(recs[i].key, recs[j].key); c != 0 {
			return c < 0
		}
		if recs[i].tag != recs[j].tag {
			return recs[i].tag < recs[j].tag
		}
		return recs[i].seq < recs[j].seq
	})
}

// applyBlocking walks runs of equal keys and emits the blocking operator's
// output tuples.
func applyBlocking(b *physical.Operator, recs []shuffleRec, emit func(types.Tuple) error) error {
	switch b.Kind {
	case physical.OpLimit:
		n := b.N
		for i := int64(0); i < n && i < int64(len(recs)); i++ {
			if err := emit(recs[i].val); err != nil {
				return err
			}
		}
		return nil
	case physical.OpOrder:
		for _, rec := range recs {
			if err := emit(rec.val); err != nil {
				return err
			}
		}
		return nil
	}

	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && types.CompareTuples(recs[end].key, recs[start].key) == 0 {
			end++
		}
		run := recs[start:end]
		switch b.Kind {
		case physical.OpDistinct:
			if err := emit(run[0].val); err != nil {
				return err
			}
		case physical.OpGroup:
			bag := &types.Bag{}
			for _, rec := range run {
				bag.Add(rec.val)
			}
			if err := emit(types.Tuple{groupValue(b, run[0].key), types.NewBag(bag)}); err != nil {
				return err
			}
		case physical.OpCoGroup:
			bags := make([]*types.Bag, len(b.Inputs))
			for i := range bags {
				bags[i] = &types.Bag{}
			}
			for _, rec := range run {
				bags[rec.tag].Add(rec.val)
			}
			out := types.Tuple{groupValue(b, run[0].key)}
			for _, bag := range bags {
				out = append(out, types.NewBag(bag))
			}
			if err := emit(out); err != nil {
				return err
			}
		case physical.OpJoin:
			// Tags are sorted within the run; find the tag boundary.
			split := sort.Search(len(run), func(i int) bool { return run[i].tag > 0 })
			left, right := run[:split], run[split:]
			for _, l := range left {
				for _, rt := range right {
					joined := make(types.Tuple, 0, len(l.val)+len(rt.val))
					joined = append(joined, l.val...)
					joined = append(joined, rt.val...)
					if err := emit(joined); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("unsupported blocking operator %s", b.Kind)
		}
		start = end
	}
	return nil
}

// applyCombined walks runs of equal keys, merging combiner partials and
// emitting the finalized aggregate tuple per group.
func applyCombined(comb *combineSpec, recs []shuffleRec, emit func(types.Tuple) error) error {
	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && types.CompareTuples(recs[end].key, recs[start].key) == 0 {
			end++
		}
		merged := recs[start].val
		for _, rec := range recs[start+1 : end] {
			merged = comb.mergePartials(merged, rec.val)
		}
		if err := emit(comb.finalize(recs[start].key, merged)); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// groupValue renders the group column: the bare key for single-key groups, a
// tuple for composite keys, and "all" for GROUP ALL.
func groupValue(b *physical.Operator, key types.Tuple) types.Value {
	if b.Kind == physical.OpGroup && (len(b.Keys) == 0 || len(b.Keys[0]) == 0) {
		return types.NewString("all")
	}
	if len(key) == 1 {
		return key[0]
	}
	return types.NewTuple(key)
}
