package mapred

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/exec"
	"repro/internal/physical"
	"repro/internal/types"
)

// Engine executes jobs against a DFS and costs them with a cluster model.
//
// The data plane shuffles the way Hadoop does: each map task sorts its
// per-reduce-partition output runs locally (inside the map-task pool), the
// reduce side k-way-merges the pre-sorted runs, and reduce partitions run
// on their own bounded worker pool. The shuffle order — (key, tag, seq),
// compiled per job into a jobComparator — is strict (seq is globally
// unique), so none of that parallelism or the non-stable sorts can change
// output bytes; SerialDataPlane keeps the one-buffer-per-partition,
// stable-sort, sequential-reduce implementation around as the differential
// oracle and benchmark baseline.
type Engine struct {
	FS      *dfs.FS
	Cluster *cluster.Config
	// ReduceTasks is the number of real reduce partitions (execution
	// parallelism, independent of the simulated reduce-task count).
	ReduceTasks int
	// MapParallelism bounds concurrent map tasks; 0 means GOMAXPROCS.
	MapParallelism int
	// ReduceParallelism bounds concurrent reduce partitions; 0 means
	// GOMAXPROCS. Partitions are independent (hash-partitioned by key and
	// committed to distinct file partitions), so the pool changes wall
	// clock only, never output.
	ReduceParallelism int
	// SerialDataPlane selects the serial single-sort reference
	// implementation: one concatenated shuffle buffer per reduce
	// partition, stable-sorted from scratch with the closure comparator,
	// reduce partitions executed sequentially, no buffer pooling. The
	// differential oracle tests pin the default data plane byte-identical
	// to it, and the server-engine benchmark uses it as the pre-PR
	// baseline.
	SerialDataPlane bool
	// DisableCombiner turns off map-side combining of algebraic aggregates
	// (used by tests to verify the combined and uncombined paths agree).
	DisableCombiner bool
	// LatencyScale emulates driving a remote cluster: after each job the
	// engine sleeps LatencyScale * the job's simulated time, so wall clock
	// reflects cluster occupancy instead of just local CPU. 0 disables.
	// In the paper's deployment the daemon is an orchestrator — Hadoop
	// jobs take minutes on the cluster while the client CPU idles — and
	// this knob is what lets benchmarks reproduce that regime: a FIFO
	// scheduler serializes the waits, a concurrent one overlaps them.
	LatencyScale float64
	// Runner executes individual tasks. Nil selects the in-process runner
	// (this process's map/reduce pools against FS). Remote backends
	// (internal/fleet) install a TaskRunner that ships tasks to worker
	// processes; either way the engine keeps planning, output-file
	// creation, partition commits, and stats.
	Runner TaskRunner
	// Shuffle overrides the transport the in-process runner uses to
	// materialize a reduce partition's runs. Nil selects the zero-copy
	// in-memory hand-off.
	Shuffle ShuffleTransport
	// PhaseHook, when set, is called as each job passes a phase boundary
	// with the job ID and a label ("map-done", "job-done"). Fault-injection
	// tests use it to time worker kills against phase boundaries.
	PhaseHook func(jobID, phase string)

	// runHint is the observed mean shuffle-run length of the engine's most
	// recent reduce job; map tasks pre-size their run buffers from it so
	// steady-state workloads skip the append growth path.
	runHint atomic.Int64
	// mapTaskHook, when set, runs at the start of every map task executed
	// by the in-process runner (the cancellation regression tests block
	// and release it).
	mapTaskHook func(ctx context.Context, taskIdx int) error
}

// DefaultReduceTasks is the reduce partition count NewEngine configures.
const DefaultReduceTasks = 4

// NewEngine returns an engine with default execution parallelism.
func NewEngine(fs *dfs.FS, c *cluster.Config) *Engine {
	return &Engine{FS: fs, Cluster: c, ReduceTasks: DefaultReduceTasks}
}

// JobResult reports the real counters and simulated timing of one job.
type JobResult struct {
	JobID string
	Stats cluster.JobStats
	Times cluster.Times
	// StoreBytes maps every written output path to its logical bytes.
	StoreBytes map[string]int64
	// InjectedStoreBytes is the total written by ReStore-injected stores —
	// the materialization overhead the paper measures.
	InjectedStoreBytes int64
}

// shuffleRec is one map-output record: a key, the input branch tag, a
// sequence number for deterministic ordering, and the value tuple.
type shuffleRec struct {
	key types.Tuple
	tag int
	seq int64
	val types.Tuple
}

// mapTask identifies one unit of map work: a Load operator and one partition
// of its input file.
type mapTask struct {
	loadID    int
	partition int
	taskIdx   int
}

// RunJob executes the job and returns its statistics and simulated times.
// Cancelling ctx stops in-flight map tasks and reduce partitions at their
// next record batch and prevents queued ones from starting.
func (e *Engine) RunJob(ctx context.Context, job *Job) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tasks, err := e.planMapTasks(job)
	if err != nil {
		return nil, err
	}
	jc := e.newJobContext(job)
	if rel, ok := e.runner().(JobReleaser); ok {
		defer rel.ReleaseJob(jc)
	}

	// Create output files: map-side stores get one partition per map task,
	// reduce-side stores one per reduce partition.
	for _, st := range jc.mapStores {
		if _, err := e.FS.Create(st.Path, len(tasks)); err != nil {
			return nil, err
		}
		if err := e.FS.SetSchema(st.Path, st.Schema); err != nil {
			return nil, err
		}
	}
	for _, st := range jc.reduceStores {
		if _, err := e.FS.Create(st.Path, jc.ReduceParts); err != nil {
			return nil, err
		}
		if err := e.FS.SetSchema(st.Path, st.Schema); err != nil {
			return nil, err
		}
	}

	res := &JobResult{JobID: job.ID, StoreBytes: make(map[string]int64)}
	byPart, err := e.runMapPhase(ctx, jc, tasks, res)
	if err != nil {
		return nil, err
	}
	if e.PhaseHook != nil {
		e.PhaseHook(job.ID, "map-done")
	}
	if job.Blocking() != nil {
		res.Stats.HasReduce = true
		if err := e.runReducePhase(ctx, jc, byPart, res); err != nil {
			return nil, err
		}
	}
	if e.PhaseHook != nil {
		e.PhaseHook(job.ID, "job-done")
	}

	// Collect per-store byte counts and classify them for the cost model.
	for _, st := range job.Plan.Sinks() {
		stat, err := e.FS.StatFile(st.Path)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: stat output %s: %w", job.ID, st.Path, err)
		}
		res.StoreBytes[st.Path] = stat.Bytes
		onMapSide := job.MapSide(st.ID)
		if st.Injected {
			res.Stats.InjectedStores++
		}
		switch {
		case st.Injected && onMapSide:
			res.Stats.MapStoreBytes += stat.Bytes
			res.InjectedStoreBytes += stat.Bytes
		case st.Injected:
			res.Stats.ReduceStoreBytes += stat.Bytes
			res.InjectedStoreBytes += stat.Bytes
		case onMapSide && job.Blocking() != nil:
			// A primary store on the map side of a reduce job still costs
			// map-phase writes.
			res.Stats.MapStoreBytes += stat.Bytes
		default:
			res.Stats.OutputBytes += stat.Bytes
		}
	}
	res.Times = e.Cluster.Simulate(res.Stats)
	if e.LatencyScale > 0 {
		time.Sleep(time.Duration(float64(res.Times.Total) * e.LatencyScale))
	}
	return res, nil
}

// planMapTasks enumerates (load, partition) pairs.
func (e *Engine) planMapTasks(job *Job) ([]mapTask, error) {
	var tasks []mapTask
	for _, load := range job.Plan.Sources() {
		n, err := e.FS.Partitions(load.Path)
		if err != nil {
			return nil, fmt.Errorf("mapred: job %s: input %s: %w", job.ID, load.Path, err)
		}
		for p := 0; p < n; p++ {
			tasks = append(tasks, mapTask{loadID: load.ID, partition: p, taskIdx: len(tasks)})
		}
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("mapred: job %s has no input partitions", job.ID)
	}
	return tasks, nil
}

// splitStores partitions the job's stores into map-side and reduce-side.
func splitStores(job *Job) (mapStores, reduceStores []*physical.Operator) {
	for _, st := range job.Plan.Sinks() {
		if job.MapSide(st.ID) {
			mapStores = append(mapStores, st)
		} else {
			reduceStores = append(reduceStores, st)
		}
	}
	return mapStores, reduceStores
}

// runner returns the installed TaskRunner, defaulting to in-process.
func (e *Engine) runner() TaskRunner {
	if e.Runner != nil {
		return e.Runner
	}
	return localRunner{e}
}

// newJobContext compiles the engine-side JobContext, wiring the engine's
// data-plane selection, shared run-length hint, and test hooks into it.
func (e *Engine) newJobContext(job *Job) *JobContext {
	jc := NewJobContext(job, e.ReduceTasks, !e.DisableCombiner)
	jc.pooled = !e.SerialDataPlane
	jc.hint = &e.runHint
	jc.mapHook = e.mapTaskHook
	return jc
}

// taskOutput buffers one task's writes to one store.
type taskOutput struct {
	buf     []byte
	scratch []byte
	records int64
}

func (o *taskOutput) write(t types.Tuple) {
	o.scratch = types.EncodeTuple(o.scratch[:0], t)
	var lenbuf [10]byte
	n := putUvarint(lenbuf[:], uint64(len(o.scratch)))
	o.buf = append(o.buf, lenbuf[:n]...)
	o.buf = append(o.buf, o.scratch...)
	o.records++
}

func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

// runMapPhase executes all map tasks through the TaskRunner (bounded
// parallelism for the in-process runner; remote runners impose their own),
// commits the map-side store partitions deterministically, and returns each
// reduce partition's shuffle run refs in task order. Task failures are all
// collected — a multi-task failure reports every task's error (in task
// order), not an arbitrary one — except cancellation, which reports the
// context error alone.
func (e *Engine) runMapPhase(ctx context.Context, jc *JobContext, tasks []mapTask, res *JobResult) ([][]RunRef, error) {
	runner := e.runner()
	results := make([]*MapResult, len(tasks))
	taskErrs := make([]error, len(tasks))

	par := e.MapParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(task mapTask) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				taskErrs[task.taskIdx] = err
				return
			}
			spec := MapTaskSpec{TaskIdx: task.taskIdx, LoadID: task.loadID, Partition: task.partition}
			mr, err := runner.RunMapTask(ctx, jc, spec)
			if err != nil {
				taskErrs[task.taskIdx] = fmt.Errorf("mapred: job %s map task %d: %w", jc.Job.ID, task.taskIdx, err)
				return
			}
			results[task.taskIdx] = mr
		}(task)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapred: job %s: %w", jc.Job.ID, err)
	}
	if err := errors.Join(taskErrs...); err != nil {
		return nil, err
	}

	// Commit map-side store partitions and group shuffle runs by reduce
	// partition, in task order.
	byPart := make([][]RunRef, jc.ReduceParts)
	var totalRecs, nRuns int
	for idx, mr := range results {
		for path, sp := range mr.Stores {
			if err := e.FS.CommitPartition(path, idx, sp.Data, sp.Records); err != nil {
				return nil, err
			}
		}
		for _, ref := range mr.Runs {
			byPart[ref.Part] = append(byPart[ref.Part], ref)
			totalRecs += ref.Records
			nRuns++
		}
		res.Stats.InputBytes += mr.InputBytes
		res.Stats.ShuffleBytes += mr.ShuffleBytes
	}
	if jc.pooled && nRuns > 0 {
		e.runHint.Store(int64(totalRecs/nRuns + 1))
	}
	return byPart, nil
}

// blockingKey computes the shuffle key for one record entering the blocking
// operator on the given input tag.
func blockingKey(b *physical.Operator, tag int, t types.Tuple) types.Tuple {
	switch b.Kind {
	case physical.OpJoin, physical.OpCoGroup:
		return exec.EvalKey(b.Keys[tag], t)
	case physical.OpGroup:
		if len(b.Keys) == 0 || len(b.Keys[0]) == 0 {
			return types.Tuple{} // GROUP ALL
		}
		return exec.EvalKey(b.Keys[0], t)
	case physical.OpDistinct:
		return t
	case physical.OpOrder:
		key := make(types.Tuple, len(b.SortCols))
		for i, sc := range b.SortCols {
			if sc.Index < len(t) {
				key[i] = t[sc.Index]
			} else {
				key[i] = types.Null()
			}
		}
		return key
	case physical.OpLimit:
		return types.Tuple{}
	default:
		return types.Tuple{}
	}
}

// blockingKeyInto is blockingKey evaluated into a reusable scratch tuple.
// The caller must not retain the result across calls (the combiner clones
// it when a new group is first seen).
func blockingKeyInto(dst types.Tuple, b *physical.Operator, tag int, t types.Tuple) types.Tuple {
	switch b.Kind {
	case physical.OpJoin, physical.OpCoGroup:
		return exec.EvalKeyInto(dst, b.Keys[tag], t)
	case physical.OpGroup:
		if len(b.Keys) == 0 || len(b.Keys[0]) == 0 {
			return dst[:0] // GROUP ALL
		}
		return exec.EvalKeyInto(dst, b.Keys[0], t)
	default:
		return append(dst[:0], blockingKey(b, tag, t)...)
	}
}

// runReducePhase runs every reduce partition through the TaskRunner and
// commits the returned store payloads. On the default plane each partition
// k-way-merges its pre-sorted map runs and partitions execute on the
// ReduceParallelism worker pool — partitions are independent (distinct keys,
// distinct output file partitions), so concurrency changes wall clock only.
// The serial plane keeps the reference behavior: concatenated buffer, stable
// single-sort, sequential partitions.
func (e *Engine) runReducePhase(ctx context.Context, jc *JobContext, byPart [][]RunRef, res *JobResult) error {
	runner := e.runner()
	commit := func(r int, rr *ReduceResult) error {
		for path, sp := range rr.Stores {
			if err := e.FS.CommitPartition(path, r, sp.Data, sp.Records); err != nil {
				return err
			}
		}
		return nil
	}

	if e.SerialDataPlane {
		for r := 0; r < jc.ReduceParts; r++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("mapred: job %s: %w", jc.Job.ID, err)
			}
			rr, err := runner.RunReducePartition(ctx, jc, r, byPart[r])
			if err != nil {
				return err
			}
			if err := commit(r, rr); err != nil {
				return err
			}
		}
		return nil
	}

	workers := e.ReduceParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jc.ReduceParts {
		workers = jc.ReduceParts
	}
	partErrs := make([]error, jc.ReduceParts)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for r := 0; r < jc.ReduceParts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				partErrs[r] = err
				return
			}
			rr, err := runner.RunReducePartition(ctx, jc, r, byPart[r])
			if err != nil {
				partErrs[r] = err
				return
			}
			partErrs[r] = commit(r, rr)
		}(r)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("mapred: job %s: %w", jc.Job.ID, err)
	}
	return errors.Join(partErrs...)
}

// sortShuffle orders records by key (respecting Order's sort directions),
// then tag, then sequence — the merge-sort Hadoop performs between map and
// reduce. This is the serial reference plane's from-scratch stable sort;
// the default plane reaches the same order (the (key, tag, seq) order is
// strict, making stability vacuous) by merging locally sorted runs with the
// compiled jobComparator.
func sortShuffle(b *physical.Operator, recs []shuffleRec) {
	cmpKey := func(a, bk types.Tuple) int { return types.CompareTuples(a, bk) }
	if b.Kind == physical.OpOrder {
		cmpKey = func(x, y types.Tuple) int {
			for i, sc := range b.SortCols {
				var c int
				if i < len(x) && i < len(y) {
					c = types.Compare(x[i], y[i])
				}
				if sc.Desc {
					c = -c
				}
				if c != 0 {
					return c
				}
			}
			return 0
		}
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if c := cmpKey(recs[i].key, recs[j].key); c != 0 {
			return c < 0
		}
		if recs[i].tag != recs[j].tag {
			return recs[i].tag < recs[j].tag
		}
		return recs[i].seq < recs[j].seq
	})
}

// applyBlocking walks runs of equal keys and emits the blocking operator's
// output tuples.
func applyBlocking(b *physical.Operator, recs []shuffleRec, emit func(types.Tuple) error) error {
	switch b.Kind {
	case physical.OpLimit:
		n := b.N
		for i := int64(0); i < n && i < int64(len(recs)); i++ {
			if err := emit(recs[i].val); err != nil {
				return err
			}
		}
		return nil
	case physical.OpOrder:
		for _, rec := range recs {
			if err := emit(rec.val); err != nil {
				return err
			}
		}
		return nil
	}

	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && types.CompareTuples(recs[end].key, recs[start].key) == 0 {
			end++
		}
		run := recs[start:end]
		switch b.Kind {
		case physical.OpDistinct:
			if err := emit(run[0].val); err != nil {
				return err
			}
		case physical.OpGroup:
			bag := &types.Bag{}
			for _, rec := range run {
				bag.Add(rec.val)
			}
			if err := emit(types.Tuple{groupValue(b, run[0].key), types.NewBag(bag)}); err != nil {
				return err
			}
		case physical.OpCoGroup:
			bags := make([]*types.Bag, len(b.Inputs))
			for i := range bags {
				bags[i] = &types.Bag{}
			}
			for _, rec := range run {
				bags[rec.tag].Add(rec.val)
			}
			out := types.Tuple{groupValue(b, run[0].key)}
			for _, bag := range bags {
				out = append(out, types.NewBag(bag))
			}
			if err := emit(out); err != nil {
				return err
			}
		case physical.OpJoin:
			// Tags are sorted within the run; find the tag boundary.
			split := sort.Search(len(run), func(i int) bool { return run[i].tag > 0 })
			left, right := run[:split], run[split:]
			for _, l := range left {
				for _, rt := range right {
					joined := make(types.Tuple, 0, len(l.val)+len(rt.val))
					joined = append(joined, l.val...)
					joined = append(joined, rt.val...)
					if err := emit(joined); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("unsupported blocking operator %s", b.Kind)
		}
		start = end
	}
	return nil
}

// applyCombined walks runs of equal keys, merging combiner partials and
// emitting the finalized aggregate tuple per group.
func applyCombined(comb *combineSpec, recs []shuffleRec, emit func(types.Tuple) error) error {
	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && types.CompareTuples(recs[end].key, recs[start].key) == 0 {
			end++
		}
		merged := recs[start].val
		for _, rec := range recs[start+1 : end] {
			merged = comb.mergePartials(merged, rec.val)
		}
		if err := emit(comb.finalize(recs[start].key, merged)); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// groupValue renders the group column: the bare key for single-key groups, a
// tuple for composite keys, and "all" for GROUP ALL.
func groupValue(b *physical.Operator, key types.Tuple) types.Value {
	if b.Kind == physical.OpGroup && (len(b.Keys) == 0 || len(b.Keys[0]) == 0) {
		return types.NewString("all")
	}
	if len(key) == 1 {
		return key[0]
	}
	return types.NewTuple(key)
}
