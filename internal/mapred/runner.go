package mapred

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/physical"
	"repro/internal/types"
)

// JobContext is the compiled per-job execution state shared by every task of
// one job: the job itself, the final reduce partition count, the combiner
// decision, the compiled shuffle comparator, and the map/reduce store split.
// The engine builds one per RunJob; remote workers rebuild an equivalent one
// from the decoded wire job via NewJobContext — both sides compile from the
// same Job, so task execution agrees bit for bit.
type JobContext struct {
	// Job is the validated job the tasks belong to.
	Job *Job
	// ReduceParts is the number of reduce partitions the shuffle hashes
	// into, after the single-partition clamp for Order/Limit jobs.
	ReduceParts int

	comb         *combineSpec
	cmp          *jobComparator
	mapStores    []*physical.Operator
	reduceStores []*physical.Operator
	include      map[int]bool // reduce-side pipeline ops (blocking + descendants)
	pooled       bool         // run/scratch buffer pooling (off on the serial oracle plane)
	hint         *atomic.Int64
	mapHook      func(ctx context.Context, taskIdx int) error
}

// NewJobContext compiles the shared per-job execution state. reduceParts is
// clamped to at least 1 and to exactly 1 for Order/Limit jobs (total order
// and exact limits need a single partition), matching the engine's own
// planning; combine enables map-side combining when the job's shape supports
// it (the decision is recomputed deterministically from the plan, so a
// coordinator and its workers always agree).
func NewJobContext(job *Job, reduceParts int, combine bool) *JobContext {
	if reduceParts < 1 {
		reduceParts = 1
	}
	if b := job.Blocking(); b != nil && (b.Kind == physical.OpOrder || b.Kind == physical.OpLimit) {
		reduceParts = 1
	}
	jc := &JobContext{Job: job, ReduceParts: reduceParts, pooled: true, hint: new(atomic.Int64)}
	if combine {
		jc.comb = detectCombiner(job)
	}
	jc.cmp = compileComparator(job.Blocking())
	jc.mapStores, jc.reduceStores = splitStores(job)
	if b := job.Blocking(); b != nil {
		jc.include = make(map[int]bool, len(job.reduceSide)+1)
		jc.include[b.ID] = true
		for id := range job.reduceSide {
			jc.include[id] = true
		}
	}
	return jc
}

// Combining reports whether map tasks pre-aggregate with the combiner. A
// coordinator ships this to workers so their NewJobContext call reproduces
// the same decision even if their combiner default ever diverges.
func (jc *JobContext) Combining() bool { return jc.comb != nil }

// MapTaskSpec identifies one unit of map work: one partition of one Load
// operator's input file. TaskIdx is the job-wide task index that seeds the
// strict shuffle order and names the task's map-side store partitions.
type MapTaskSpec struct {
	// TaskIdx is the dense per-job task index.
	TaskIdx int `json:"task"`
	// LoadID is the Load operator's ID in the job plan.
	LoadID int `json:"load"`
	// Partition is the input file partition this task streams.
	Partition int `json:"part"`
}

// StorePart is one committed-to-be partition of one store file: the encoded
// payload in the DFS partition wire format plus its record count.
type StorePart struct {
	// Data is the uvarint-framed EncodeTuple payload.
	Data []byte `json:"data"`
	// Records is the number of tuples in Data.
	Records int64 `json:"records"`
}

// RunRef names one sorted shuffle run: the map task that produced it, the
// reduce partition it belongs to, and where it lives — inline records for
// the in-process transport, or a worker address for remote pulls.
type RunRef struct {
	// TaskIdx is the producing map task's index.
	TaskIdx int `json:"task"`
	// Part is the reduce partition the run belongs to.
	Part int `json:"part"`
	// Records is the run's record count; transports validate fetched runs
	// against it so torn pulls surface as errors.
	Records int `json:"records"`
	// Bytes is the encoded run length (remote runs only).
	Bytes int64 `json:"bytes,omitempty"`
	// Addr is the base URL of the worker holding the run (remote runs only).
	Addr string `json:"addr,omitempty"`

	recs []shuffleRec // in-process runs only
}

// MapResult is one map task's output: per-store partition payloads, the
// sorted shuffle runs it produced, and the byte counters the cost model
// charges. The coordinator commits Stores (task idx == partition idx) and
// hands Runs to the reduce phase.
type MapResult struct {
	// Stores maps store path to this task's partition payload.
	Stores map[string]StorePart `json:"stores"`
	// Runs holds one ref per non-empty reduce partition.
	Runs []RunRef `json:"runs"`
	// InputBytes is the task's input partition size.
	InputBytes int64 `json:"inputBytes"`
	// ShuffleBytes is the encoded size of the task's shuffle output.
	ShuffleBytes int64 `json:"shuffleBytes"`
}

// EncodedRuns serializes each of the result's shuffle runs with the binary
// run codec, indexed like Runs, and stamps each ref's Bytes. Workers call it
// to retain runs for peer pulls; the in-memory records stay attached too.
func (mr *MapResult) EncodedRuns() [][]byte {
	out := make([][]byte, len(mr.Runs))
	for i := range mr.Runs {
		out[i] = encodeRun(nil, mr.Runs[i].recs)
		mr.Runs[i].Bytes = int64(len(out[i]))
	}
	return out
}

// ReduceResult is one reduce partition's output: per-store payloads for the
// partition the coordinator commits.
type ReduceResult struct {
	// Stores maps store path to this partition's payload.
	Stores map[string]StorePart `json:"stores"`
}

// TaskRunner executes individual tasks on behalf of the engine coordinator.
// The default implementation runs them in-process on the engine's pools;
// internal/fleet ships them to worker processes. Either way the engine keeps
// planning, output-file creation, partition commits, and stats — a runner
// only computes.
type TaskRunner interface {
	// RunMapTask executes one map task and returns its buffered outputs.
	RunMapTask(ctx context.Context, jc *JobContext, spec MapTaskSpec) (*MapResult, error)
	// RunReducePartition merges the partition's shuffle runs, applies the
	// blocking operator and reduce-side pipeline, and returns the outputs.
	RunReducePartition(ctx context.Context, jc *JobContext, part int, refs []RunRef) (*ReduceResult, error)
}

// JobReleaser is an optional TaskRunner extension: the engine calls
// ReleaseJob when a job finishes (success or failure) so remote runners can
// free per-job state such as retained shuffle runs and cached wire plans.
// The JobContext identifies the job run — job IDs alone are not unique
// across concurrently executing workflows.
type JobReleaser interface {
	// ReleaseJob frees any state retained for the job run.
	ReleaseJob(jc *JobContext)
}

// ShuffleTransport materializes the sorted shuffle runs a reduce partition
// consumes. PR 9's k-way merge sits directly on its output: runs come back
// pre-sorted in ref order and are merged with the job comparator unchanged.
type ShuffleTransport interface {
	// FetchRuns returns one record slice per ref, in ref order.
	FetchRuns(ctx context.Context, refs []RunRef) ([][]shuffleRec, error)
}

// memShuffle is the in-process transport: runs are handed over as the map
// tasks' own record slices, zero-copy.
type memShuffle struct{}

func (memShuffle) FetchRuns(_ context.Context, refs []RunRef) ([][]shuffleRec, error) {
	out := make([][]shuffleRec, len(refs))
	for i, ref := range refs {
		if ref.recs == nil && ref.Records > 0 {
			return nil, fmt.Errorf("mapred: run of task %d part %d has no in-memory records (remote ref on the in-process transport)", ref.TaskIdx, ref.Part)
		}
		out[i] = ref.recs
	}
	return out, nil
}

// RunFetcher retrieves the encoded bytes of one remote shuffle run.
type RunFetcher func(ctx context.Context, ref RunRef) ([]byte, error)

// NewFetchTransport adapts a byte-level run fetcher into a ShuffleTransport:
// fetched runs are decoded with the run codec and validated against the
// ref's record count, so a torn or truncated pull surfaces as an error
// instead of silent data loss.
func NewFetchTransport(f RunFetcher) ShuffleTransport { return fetchTransport{f} }

type fetchTransport struct{ f RunFetcher }

func (ft fetchTransport) FetchRuns(ctx context.Context, refs []RunRef) ([][]shuffleRec, error) {
	out := make([][]shuffleRec, len(refs))
	for i, ref := range refs {
		data, err := ft.f(ctx, ref)
		if err != nil {
			return nil, fmt.Errorf("mapred: fetch run task %d part %d from %s: %w", ref.TaskIdx, ref.Part, ref.Addr, err)
		}
		recs, err := decodeRun(data, getRecSlice(ref.Records))
		if err != nil {
			return nil, fmt.Errorf("mapred: run task %d part %d from %s: %w", ref.TaskIdx, ref.Part, ref.Addr, err)
		}
		if len(recs) != ref.Records {
			return nil, fmt.Errorf("mapred: torn shuffle run task %d part %d from %s: got %d records, want %d", ref.TaskIdx, ref.Part, ref.Addr, len(recs), ref.Records)
		}
		out[i] = recs
	}
	return out, nil
}

// localRunner is the default TaskRunner: tasks run in this process against
// the engine's DFS and buffer pools.
type localRunner struct{ e *Engine }

func (lr localRunner) RunMapTask(ctx context.Context, jc *JobContext, spec MapTaskSpec) (*MapResult, error) {
	load := jc.Job.Plan.Op(spec.LoadID)
	r, nbytes, err := lr.e.FS.OpenPartition(load.Path, spec.Partition)
	if err != nil {
		return nil, err
	}
	return execMapTask(ctx, jc, spec, r, nbytes)
}

func (lr localRunner) RunReducePartition(ctx context.Context, jc *JobContext, part int, refs []RunRef) (*ReduceResult, error) {
	if !jc.pooled {
		// Serial oracle plane: concatenate the unsorted per-task buffers in
		// task order and stable-sort from scratch, no pooling.
		var recs []shuffleRec
		for _, ref := range refs {
			recs = append(recs, ref.recs...)
		}
		sortShuffle(jc.Job.Blocking(), recs)
		return execReduceBody(jc, part, recs, false)
	}
	tr := lr.e.Shuffle
	if tr == nil {
		tr = memShuffle{}
	}
	return ExecReducePartition(ctx, jc, part, refs, tr)
}

// shuffleEmitter accumulates one map task's shuffle output: hash-partitioned
// into ReduceParts runs, combiner-folded when enabled, ordered by the strict
// (key, tag, seq) order with seq seeded from the task index.
type shuffleEmitter struct {
	jc         *JobContext
	blocking   *physical.Operator
	shuffle    [][]shuffleRec
	acc        *combAccumulator
	seq        int64
	taskBase   int64
	scratch    []byte
	keyScratch types.Tuple
	shuffleLen int64
	runHint    int
}

func newShuffleEmitter(jc *JobContext, taskIdx int) *shuffleEmitter {
	em := &shuffleEmitter{
		jc:       jc,
		blocking: jc.Job.Blocking(),
		shuffle:  make([][]shuffleRec, jc.ReduceParts),
		taskBase: int64(taskIdx) << 32,
	}
	if jc.comb != nil {
		em.acc = newCombAccumulator(jc.comb)
	}
	if jc.pooled {
		em.scratch = getScratch()
		em.runHint = int(jc.hint.Load())
	}
	return em
}

func (em *shuffleEmitter) push(r int, rec shuffleRec) {
	run := em.shuffle[r]
	if em.jc.pooled && cap(run) == 0 {
		run = getRecSlice(em.runHint)
	}
	em.shuffle[r] = append(run, rec)
}

func (em *shuffleEmitter) collect(tag int, key, val types.Tuple) {
	r := 0
	if em.jc.ReduceParts > 1 {
		r = int(types.HashTuple(key) % uint64(em.jc.ReduceParts))
	}
	em.push(r, shuffleRec{key: key, tag: tag, seq: em.taskBase | em.seq, val: val})
	em.seq++
	em.scratch = types.EncodeTuple(em.scratch[:0], key)
	em.shuffleLen += int64(len(em.scratch))
	em.scratch = types.EncodeTuple(em.scratch[:0], val)
	em.shuffleLen += int64(len(em.scratch))
}

func (em *shuffleEmitter) emit(tag int, t types.Tuple) error {
	if em.acc != nil {
		// The combiner clones the key on first sight of a group, so the
		// evaluation can reuse one scratch tuple for the whole task instead
		// of allocating per record.
		em.keyScratch = blockingKeyInto(em.keyScratch, em.blocking, tag, t)
		em.acc.add(em.keyScratch, t)
		return nil
	}
	key := blockingKey(em.blocking, tag, t)
	if em.blocking.Kind == physical.OpJoin && exec.KeyHasNull(key) {
		return nil // null join keys never match
	}
	em.collect(tag, key, t)
	return nil
}

// finish flushes combiner partials, locally sorts every run (default plane),
// and returns the per-partition RunRefs.
func (em *shuffleEmitter) finish(taskIdx int) []RunRef {
	if em.acc != nil {
		for _, ks := range em.acc.order {
			st := em.acc.states[ks]
			em.collect(0, st.key, st.vals)
		}
	}
	if em.jc.pooled {
		for r := range em.shuffle {
			sortRun(em.jc.cmp, em.shuffle[r])
		}
		putScratch(em.scratch)
	}
	var refs []RunRef
	for r, run := range em.shuffle {
		if len(run) == 0 {
			continue
		}
		refs = append(refs, RunRef{TaskIdx: taskIdx, Part: r, Records: len(run), recs: run})
	}
	return refs
}

// execMapTask streams one input partition through the map-side pipeline,
// buffering per-store outputs and shuffle runs. It is the task body shared
// by the in-process runner and remote workers (via ExecMapTask).
func execMapTask(ctx context.Context, jc *JobContext, spec MapTaskSpec, r *types.Reader, inputBytes int64) (*MapResult, error) {
	if jc.mapHook != nil {
		if err := jc.mapHook(ctx, spec.TaskIdx); err != nil {
			return nil, err
		}
	}
	pipe := exec.NewPipeline(jc.Job.Plan, jc.Job.mapSide)

	// Wire map-side stores: every task owns one partition of each.
	outs := make(map[string]*taskOutput, len(jc.mapStores))
	for _, st := range jc.mapStores {
		out := &taskOutput{}
		if jc.pooled {
			out.scratch = getScratch()
		}
		outs[st.Path] = out
		if err := pipe.SetOutput(st.ID, func(t types.Tuple) error {
			out.write(t)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Wire shuffle collectors on the producers feeding the blocking op.
	var em *shuffleEmitter
	if blocking := jc.Job.Blocking(); blocking != nil {
		em = newShuffleEmitter(jc, spec.TaskIdx)
		for tag, inID := range blocking.Inputs {
			tag := tag
			if err := pipe.SetOutput(inID, func(t types.Tuple) error {
				return em.emit(tag, t)
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := pipe.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline for %s: %w", jc.Job.ID, err)
	}

	// Stream the input partition through the pipeline, checking for
	// cancellation every batch of records.
	n := 0
	for {
		t, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := pipe.Push(spec.LoadID, t); err != nil {
			return nil, err
		}
		if n++; n&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}

	mr := &MapResult{Stores: make(map[string]StorePart, len(outs)), InputBytes: inputBytes}
	for path, out := range outs {
		mr.Stores[path] = StorePart{Data: out.buf, Records: out.records}
		if jc.pooled {
			putScratch(out.scratch)
		}
	}
	if em != nil {
		mr.Runs = em.finish(spec.TaskIdx)
		mr.ShuffleBytes = em.shuffleLen
	}
	return mr, nil
}

// ExecMapTask runs one map task body over raw input partition bytes (the
// DFS partition wire format). Worker processes call it with bytes shipped by
// the coordinator; InputBytes is charged as the payload length, matching the
// in-process OpenPartition accounting.
func ExecMapTask(ctx context.Context, jc *JobContext, spec MapTaskSpec, input []byte) (*MapResult, error) {
	return execMapTask(ctx, jc, spec, types.NewReader(bytes.NewReader(input)), int64(len(input)))
}

// ReplayMapTask rebuilds one lost map task's sorted shuffle runs from the
// task's already-materialized injected store partitions instead of re-running
// the map pipeline — ReStore's reuse-as-recovery path. stored maps each
// blocking-input tag to the encoded partition payload of a store that
// materialized exactly that input's tuples for this task (the coordinator
// resolves Split transparency and partition indices). Per-tag relative order
// equals the original emission order, and the (key, tag, seq) shuffle order
// only distinguishes seq within one (key, tag) pair, so the rebuilt runs
// merge into byte-identical reduce output.
func ReplayMapTask(ctx context.Context, jc *JobContext, spec MapTaskSpec, stored map[int][]byte) (*MapResult, error) {
	blocking := jc.Job.Blocking()
	if blocking == nil {
		return nil, fmt.Errorf("mapred: job %s is map-only; nothing to replay", jc.Job.ID)
	}
	em := newShuffleEmitter(jc, spec.TaskIdx)
	for tag := range blocking.Inputs {
		data, ok := stored[tag]
		if !ok {
			return nil, fmt.Errorf("mapred: replay task %d of job %s: no stored input for tag %d", spec.TaskIdx, jc.Job.ID, tag)
		}
		rd := types.NewReader(bytes.NewReader(data))
		n := 0
		for {
			t, err := rd.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("mapred: replay task %d of job %s tag %d: %w", spec.TaskIdx, jc.Job.ID, tag, err)
			}
			if err := em.emit(tag, t); err != nil {
				return nil, err
			}
			if n++; n&0x3ff == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
		}
	}
	return &MapResult{
		Stores:       map[string]StorePart{},
		Runs:         em.finish(spec.TaskIdx),
		ShuffleBytes: em.shuffleLen,
	}, nil
}

// ExecReducePartition fetches the partition's sorted runs through the
// transport, k-way-merges them with the job comparator, applies the blocking
// operator (or combiner finalization) and the reduce-side pipeline, and
// returns the per-store partition payloads. It is the reduce body shared by
// the in-process runner and remote workers.
func ExecReducePartition(ctx context.Context, jc *JobContext, part int, refs []RunRef, tr ShuffleTransport) (*ReduceResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	runs, err := tr.FetchRuns(ctx, refs)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, run := range runs {
		total += len(run)
	}
	merged := mergeRuns(jc.cmp, runs, getRecSlice(total))
	rr, err := execReduceBody(jc, part, merged, true)
	putRecSlice(merged)
	for _, run := range runs {
		putRecSlice(run)
	}
	return rr, err
}

// execReduceBody executes one reduce partition over its merged, sorted
// records: pipeline wiring, the blocking operator (or combiner merge), and
// the per-store output buffers. pooled gates the encode-scratch pooling so
// the serial oracle plane keeps its reference allocation behavior.
func execReduceBody(jc *JobContext, part int, recs []shuffleRec, pooled bool) (*ReduceResult, error) {
	blocking := jc.Job.Blocking()
	pipe := exec.NewPipeline(jc.Job.Plan, jc.include)
	outs := make(map[string]*taskOutput, len(jc.reduceStores))
	for _, st := range jc.reduceStores {
		out := &taskOutput{}
		if pooled {
			out.scratch = getScratch()
		}
		outs[st.Path] = out
		if err := pipe.SetOutput(st.ID, func(t types.Tuple) error {
			out.write(t)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if err := pipe.Validate(); err != nil {
		return nil, fmt.Errorf("mapred: job %s reduce pipeline: %w", jc.Job.ID, err)
	}

	if jc.comb != nil {
		// Merge combiner partials per key and emit the Foreach's output
		// directly, bypassing bag construction.
		emitFE := func(t types.Tuple) error { return pipe.PushOutputOf(jc.comb.foreach.ID, t) }
		if err := applyCombined(jc.comb, recs, emitFE); err != nil {
			return nil, fmt.Errorf("mapred: job %s reduce %d: %w", jc.Job.ID, part, err)
		}
	} else {
		emit := func(t types.Tuple) error { return pipe.PushOutputOf(blocking.ID, t) }
		if err := applyBlocking(blocking, recs, emit); err != nil {
			return nil, fmt.Errorf("mapred: job %s reduce %d: %w", jc.Job.ID, part, err)
		}
	}
	rr := &ReduceResult{Stores: make(map[string]StorePart, len(outs))}
	for path, out := range outs {
		rr.Stores[path] = StorePart{Data: out.buf, Records: out.records}
		if pooled {
			putScratch(out.scratch)
		}
	}
	return rr, nil
}
