package mapred

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// viewsGroupPlan builds load(data/views) -> group(user) -> store: three map
// tasks (data/views has 3 partitions) and a reduce phase.
func viewsGroupPlan(t *testing.T, out string) *physical.Plan {
	t.Helper()
	p := physical.NewPlan()
	ld := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	sub := viewsSchema()
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{ld.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "C", Kind: types.KindBag, Sub: &sub}}}})
	p.Add(&physical.Operator{Kind: physical.OpStore, Inputs: []int{g.ID}, Path: out, Schema: g.Schema})
	return p
}

// TestRunJobContextCancellation proves cancellation is honored at task
// boundaries: with map tasks serialized and the first one blocked on a fault
// hook, canceling the context while it runs must fail the job with
// context.Canceled and prevent the remaining tasks from ever starting.
func TestRunJobContextCancellation(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	e.MapParallelism = 1

	started := make(chan int, 8)
	block := make(chan struct{})
	var startedCount atomic.Int32
	e.mapTaskHook = func(ctx context.Context, taskIdx int) error {
		startedCount.Add(1)
		started <- taskIdx
		<-block
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started // first task is inside the hook
		cancel()
		close(block) // let it finish; the dispatcher must now stop
	}()

	_, err := e.RunJob(ctx, mustJob(t, "cancel", viewsGroupPlan(t, "out/cancel")))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJob error = %v, want context.Canceled", err)
	}
	// data/views has 3 partitions; with parallelism 1 only the blocked first
	// task may have started before the cancellation was observed.
	if n := startedCount.Load(); n >= 3 {
		t.Fatalf("%d map tasks started after cancellation, want the unstarted ones skipped", n)
	}
}

// TestRunWorkflowContextCanceledUpFront: an already-canceled context fails
// the workflow before any task runs.
func TestRunWorkflowContextCanceledUpFront(t *testing.T) {
	e := newTestEngine()
	seedViews(t, e.FS)
	var ran atomic.Int32
	e.mapTaskHook = func(ctx context.Context, taskIdx int) error {
		ran.Add(1)
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := &Workflow{Jobs: []*Job{mustJob(t, "pre", viewsGroupPlan(t, "out/pre"))}}
	if _, err := e.RunWorkflow(ctx, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunWorkflow error = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d map tasks ran under a pre-canceled context", ran.Load())
	}
}
