// Package mapred is the from-scratch MapReduce engine that stands in for
// Hadoop. A Job executes one physical plan containing at most one blocking
// operator: the operators upstream of the blocking operator run in parallel
// map tasks (one per input partition), the blocking operator is realized by
// a hash-partitioned sort shuffle, and the operators downstream run in
// reduce tasks. Jobs really execute — outputs are real tuples in the
// simulated DFS — while wall-clock time is modeled by internal/cluster.
package mapred

import (
	"fmt"
	"sort"

	"repro/internal/physical"
)

// Job is one MapReduce job: a physical plan plus its map/reduce split.
type Job struct {
	ID   string
	Plan *physical.Plan

	blocking   *physical.Operator
	mapSide    map[int]bool // operator IDs executed in map tasks
	reduceSide map[int]bool // operator IDs executed in reduce tasks (excludes blocking)
}

// NewJob validates the plan (structure and the at-most-one-blocking-operator
// rule) and computes the map/reduce split.
func NewJob(id string, plan *physical.Plan) (*Job, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("mapred: job %s: %w", id, err)
	}
	j := &Job{ID: id, Plan: plan, mapSide: make(map[int]bool), reduceSide: make(map[int]bool)}
	for _, o := range plan.Ops() {
		if o.Kind.Blocking() {
			if j.blocking != nil {
				return nil, fmt.Errorf("mapred: job %s: two blocking operators (%s and %s); the compiler must cut jobs at shuffle boundaries", id, j.blocking, o)
			}
			j.blocking = o
		}
	}
	if j.blocking == nil {
		for _, o := range plan.Ops() {
			j.mapSide[o.ID] = true
		}
		return j, nil
	}
	// Reduce side: strict descendants of the blocking operator.
	desc := descendants(plan, j.blocking.ID)
	for _, o := range plan.Ops() {
		switch {
		case o.ID == j.blocking.ID:
		case desc[o.ID]:
			j.reduceSide[o.ID] = true
		default:
			j.mapSide[o.ID] = true
		}
	}
	// The blocking operator must be a descendant of every map-side
	// non-Store sink; otherwise tuples from some branch would have nowhere
	// to go. Validate()'s consumer check plus single-blocking rule already
	// guarantee this for compiler-produced plans.
	return j, nil
}

func descendants(p *physical.Plan, id int) map[int]bool {
	out := make(map[int]bool)
	var walk func(int)
	walk = func(cur int) {
		for _, c := range p.Consumers(cur) {
			if !out[c.ID] {
				out[c.ID] = true
				walk(c.ID)
			}
		}
	}
	walk(id)
	return out
}

// Blocking returns the job's blocking operator, or nil for map-only jobs.
func (j *Job) Blocking() *physical.Operator { return j.blocking }

// MapSide reports whether the operator runs in the map phase.
func (j *Job) MapSide(id int) bool { return j.mapSide[id] }

// ReduceSide reports whether the operator runs in the reduce phase.
func (j *Job) ReduceSide(id int) bool { return j.reduceSide[id] }

// InputPaths returns the DFS paths the job loads, sorted and deduplicated.
func (j *Job) InputPaths() []string {
	seen := make(map[string]bool)
	var out []string
	for _, o := range j.Plan.Sources() {
		if !seen[o.Path] {
			seen[o.Path] = true
			out = append(out, o.Path)
		}
	}
	sort.Strings(out)
	return out
}

// OutputPaths returns every DFS path the job stores to (including injected
// sub-job stores), sorted.
func (j *Job) OutputPaths() []string {
	var out []string
	for _, o := range j.Plan.Sinks() {
		out = append(out, o.Path)
	}
	sort.Strings(out)
	return out
}

// PrimaryOutputPaths returns the job's own (non-injected) store paths.
func (j *Job) PrimaryOutputPaths() []string {
	var out []string
	for _, o := range j.Plan.Sinks() {
		if !o.Injected {
			out = append(out, o.Path)
		}
	}
	sort.Strings(out)
	return out
}
