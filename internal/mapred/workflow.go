package mapred

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
)

// Workflow is a DAG of MapReduce jobs. Dependencies are implied by data: a
// job that loads a path some other job stores depends on that job — exactly
// how Pig's JobControlCompiler sequences a compiled query.
type Workflow struct {
	Jobs []*Job
}

// DependencyMap derives jobID -> dependency jobIDs from input/output paths.
func (w *Workflow) DependencyMap() map[string][]string {
	producer := make(map[string]string) // path -> jobID
	for _, j := range w.Jobs {
		for _, out := range j.OutputPaths() {
			producer[out] = j.ID
		}
	}
	deps := make(map[string][]string, len(w.Jobs))
	for _, j := range w.Jobs {
		seen := make(map[string]bool)
		var d []string
		for _, in := range j.InputPaths() {
			if p, ok := producer[in]; ok && p != j.ID && !seen[p] {
				seen[p] = true
				d = append(d, p)
			}
		}
		sort.Strings(d)
		deps[j.ID] = d
	}
	return deps
}

// TopoOrder returns the jobs in dependency order.
func (w *Workflow) TopoOrder() ([]*Job, error) {
	return w.topoOrder(w.DependencyMap())
}

// topoOrder is TopoOrder against an already-derived dependency map, so
// callers that also need the map (RunWorkflow's critical path) derive it
// once.
func (w *Workflow) topoOrder(deps map[string][]string) ([]*Job, error) {
	byID := make(map[string]*Job, len(w.Jobs))
	for _, j := range w.Jobs {
		if byID[j.ID] != nil {
			return nil, fmt.Errorf("mapred: duplicate job id %q", j.ID)
		}
		byID[j.ID] = j
	}
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var out []*Job
	var visit func(id string) error
	visit = func(id string) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("mapred: workflow cycle at job %q", id)
		case 2:
			return nil
		}
		state[id] = 1
		for _, d := range deps[id] {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[id] = 2
		out = append(out, byID[id])
		return nil
	}
	ids := make([]string, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		ids = append(ids, j.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WorkflowResult aggregates per-job results and the Equation-1 workflow time.
type WorkflowResult struct {
	JobResults map[string]*JobResult
	// Order is the execution order used.
	Order []string
	// SimulatedTime is the critical-path completion time (Equation 1).
	SimulatedTime time.Duration
	// Stats aggregates the per-job counters.
	TotalInputBytes    int64
	TotalOutputBytes   int64
	TotalShuffleBytes  int64
	TotalInjectedBytes int64
}

// RunWorkflow executes every job in dependency order and computes the
// simulated workflow completion time via the Equation-1 critical path.
// Cancelling ctx stops the current job's in-flight tasks and skips the
// jobs not yet started.
func (e *Engine) RunWorkflow(ctx context.Context, w *Workflow) (*WorkflowResult, error) {
	deps := w.DependencyMap()
	order, err := w.topoOrder(deps)
	if err != nil {
		return nil, err
	}
	res := &WorkflowResult{JobResults: make(map[string]*JobResult, len(order))}
	durations := make(map[string]time.Duration, len(order))
	for _, j := range order {
		jr, err := e.RunJob(ctx, j)
		if err != nil {
			return nil, fmt.Errorf("mapred: workflow job %s: %w", j.ID, err)
		}
		res.JobResults[j.ID] = jr
		res.Order = append(res.Order, j.ID)
		durations[j.ID] = jr.Times.Total
		res.TotalInputBytes += jr.Stats.InputBytes
		res.TotalOutputBytes += jr.Stats.OutputBytes
		res.TotalShuffleBytes += jr.Stats.ShuffleBytes
		res.TotalInjectedBytes += jr.InjectedStoreBytes
	}
	total, err := cluster.CriticalPath(durations, deps)
	if err != nil {
		return nil, err
	}
	res.SimulatedTime = total
	return res, nil
}
