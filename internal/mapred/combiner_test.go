package mapred

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// buildAggJob constructs Load -> Group(user) -> Foreach(group, SUM(rev),
// COUNT(C), MIN(rev), MAX(rev)) -> Store, the canonical combinable shape.
func buildAggJob(t *testing.T, out string, injectGroupStore bool) *Job {
	t.Helper()
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	sub := viewsSchema()
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "C", Kind: types.KindBag, Sub: &sub}}}})
	gid := g.ID
	if injectGroupStore {
		sp := p.Add(&physical.Operator{Kind: physical.OpSplit, Inputs: []int{g.ID}, Schema: g.Schema, Injected: true})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "restore/groupout", Inputs: []int{sp.ID}, Schema: g.Schema, Injected: true})
		gid = sp.ID
	}
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{gid},
		Exprs: []*expr.Expr{
			expr.ColIdx(0),
			mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("C"), "rev")), g.Schema),
			mustBind(t, expr.Call("COUNT", expr.Col("C")), g.Schema),
			mustBind(t, expr.Call("MIN", expr.BagProj(expr.Col("C"), "rev")), g.Schema),
			mustBind(t, expr.Call("MAX", expr.BagProj(expr.Col("C"), "rev")), g.Schema),
		},
		Schema: types.SchemaFromNames("group", "sum", "cnt", "min", "max")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: out, Inputs: []int{fe.ID}, Schema: fe.Schema})
	return mustJob(t, "agg", p)
}

func TestCombinerDetection(t *testing.T) {
	job := buildAggJob(t, "out/agg", false)
	spec := detectCombiner(job)
	if spec == nil {
		t.Fatal("combinable job not detected")
	}
	if len(spec.aggs) != 5 {
		t.Errorf("aggs = %d", len(spec.aggs))
	}
	wantKinds := []combKind{combKey, combSum, combCount, combMin, combMax}
	for i, w := range wantKinds {
		if spec.aggs[i].kind != w {
			t.Errorf("agg %d kind = %v, want %v", i, spec.aggs[i].kind, w)
		}
	}
}

func TestCombinerDisabledByInjectedStore(t *testing.T) {
	// A ReStore-injected Store after the Group needs the full bags, so the
	// combiner must turn itself off — this is the paper's L6 overhead
	// mechanism.
	job := buildAggJob(t, "out/agg", true)
	if detectCombiner(job) != nil {
		t.Fatal("combiner active despite materialized group output")
	}
}

func TestCombinerNotUsedForNonAlgebraic(t *testing.T) {
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	sub := viewsSchema()
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "C", Kind: types.KindBag, Sub: &sub}}}})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0),
			mustBind(t, expr.Call("AVG", expr.BagProj(expr.Col("C"), "rev")), g.Schema)},
		Schema: types.SchemaFromNames("group", "avg")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "o", Inputs: []int{fe.ID}, Schema: fe.Schema})
	if detectCombiner(mustJob(t, "avg", p)) != nil {
		t.Error("AVG is not algebraic in this engine and must not combine")
	}
}

func TestCombinedMatchesUncombined(t *testing.T) {
	// Enough rows per key per task that partial aggregation pays off.
	rows := make([]types.Tuple, 0, 300)
	for i := 0; i < 300; i++ {
		rows = append(rows, types.Tuple{
			types.NewString([]string{"alice", "bob", "carol"}[i%3]),
			types.NewInt(int64(i % 17)),
		})
	}
	run := func(disable bool) ([]string, int64) {
		e := NewEngine(dfs.New(), cluster.Default())
		e.DisableCombiner = disable
		if err := e.FS.WritePartitioned("data/views", viewsSchema(), rows, 3); err != nil {
			t.Fatal(err)
		}
		res, err := e.RunJob(context.Background(), buildAggJob(t, "out/agg", false))
		if err != nil {
			t.Fatal(err)
		}
		return readSorted(t, e.FS, "out/agg"), res.Stats.ShuffleBytes
	}
	combined, combBytes := run(false)
	plain, plainBytes := run(true)
	if strings.Join(combined, "|") != strings.Join(plain, "|") {
		t.Errorf("combined output differs:\n%v\nvs\n%v", combined, plain)
	}
	if combBytes >= plainBytes {
		t.Errorf("combiner did not shrink shuffle: %d >= %d", combBytes, plainBytes)
	}
}

func TestCombinedGroupAll(t *testing.T) {
	e := NewEngine(dfs.New(), cluster.Default())
	seedViews(t, e.FS)
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	sub := viewsSchema()
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "A", Kind: types.KindBag, Sub: &sub}}}})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs: []*expr.Expr{
			mustBind(t, expr.Call("COUNT", expr.Col("A")), g.Schema),
			mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("A"), "rev")), g.Schema)},
		Schema: types.SchemaFromNames("n", "total")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/all", Inputs: []int{fe.ID}, Schema: fe.Schema})
	job := mustJob(t, "all", p)
	if detectCombiner(job) == nil {
		t.Fatal("GROUP ALL + algebraic aggregates should combine")
	}
	if _, err := e.RunJob(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/all")
	if len(got) != 1 || got[0] != "5\t122" {
		t.Errorf("group all = %v, want [5\\t122]", got)
	}
}

func TestCombinerNullHandling(t *testing.T) {
	e := NewEngine(dfs.New(), cluster.Default())
	schema := types.NewSchema(
		types.Field{Name: "k", Kind: types.KindString},
		types.Field{Name: "v", Kind: types.KindInt},
	)
	rows := []types.Tuple{
		{types.NewString("a"), types.Null()},
		{types.NewString("a"), types.NewInt(5)},
		{types.NewString("b"), types.Null()},
	}
	if err := e.FS.WritePartitioned("data/nulls", schema, rows, 2); err != nil {
		t.Fatal(err)
	}
	p := physical.NewPlan()
	l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/nulls", Schema: schema})
	sub := schema
	g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "C", Kind: types.KindBag, Sub: &sub}}}})
	fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0),
			mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("C"), "v")), g.Schema),
			mustBind(t, expr.Call("COUNT", expr.Col("C")), g.Schema)},
		Schema: types.SchemaFromNames("group", "sum", "cnt")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/nulls", Inputs: []int{fe.ID}, Schema: fe.Schema})
	if _, err := e.RunJob(context.Background(), mustJob(t, "nulls", p)); err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/nulls")
	// SUM skips nulls (a: 5), all-null group sums to null (b: empty cell);
	// COUNT counts all tuples.
	want := []string{"a\t5\t2", "b\t\t1"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("null handling = %v, want %v", got, want)
	}
}
