package mapred

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// The differential oracle battery: the default data plane (locally sorted
// runs, k-way merge, parallel reduce, pooled buffers, compiled comparator)
// must be observationally identical to the serial single-sort reference
// plane — byte-identical DFS state after every partition commit, identical
// rows, and identical JobResult statistics — across randomized datasets and
// every blocking operator kind. make check runs this under -race -count=2
// (the race-engine gate), so the parallel plane's interleavings vary per
// run while the comparison stays exact.

// planeSummary is everything observable about one plane's execution of the
// whole random workload.
type planeSummary struct {
	export  []byte              // full DFS state (deterministic serialization)
	results []*JobResult        // per job, in workload order
	rows    map[string][]string // output path -> rows in partition order
	errs    []string            // per job: "" or the error string
}

// dpSeedData writes the two random input tables for one seed. Key domains
// are small so groups and joins collide; values mix ints, floats that
// equal ints numerically, strings, and nulls to exercise every comparator
// path the shuffle can see.
func dpSeedData(t *testing.T, fs *dfs.FS, rng *rand.Rand) {
	t.Helper()
	randKey := func() types.Value {
		switch rng.Intn(10) {
		case 0:
			return types.Null()
		case 1:
			return types.NewFloat(float64(rng.Intn(8))) // collides with ints numerically
		default:
			return types.NewInt(int64(rng.Intn(8)))
		}
	}
	words := []string{"ash", "birch", "cedar", "fir", "oak", "pine"}
	aRows := make([]types.Tuple, 120+rng.Intn(80))
	for i := range aRows {
		aRows[i] = types.Tuple{
			randKey(),
			types.NewInt(int64(rng.Intn(100))),
			types.NewString(words[rng.Intn(len(words))]),
		}
	}
	bRows := make([]types.Tuple, 80+rng.Intn(60))
	for i := range bRows {
		bRows[i] = types.Tuple{
			randKey(),
			types.NewInt(int64(rng.Intn(50))),
		}
	}
	aSchema := types.NewSchema(
		types.Field{Name: "k"},
		types.Field{Name: "v", Kind: types.KindInt},
		types.Field{Name: "s", Kind: types.KindString},
	)
	bSchema := types.NewSchema(
		types.Field{Name: "k"},
		types.Field{Name: "w", Kind: types.KindInt},
	)
	if err := fs.WritePartitioned("data/a", aSchema, aRows, 3+rng.Intn(3)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePartitioned("data/b", bSchema, bRows, 2+rng.Intn(3)); err != nil {
		t.Fatal(err)
	}
}

func dpASchema() types.Schema {
	return types.NewSchema(
		types.Field{Name: "k"},
		types.Field{Name: "v", Kind: types.KindInt},
		types.Field{Name: "s", Kind: types.KindString},
	)
}

func dpBSchema() types.Schema {
	return types.NewSchema(
		types.Field{Name: "k"},
		types.Field{Name: "w", Kind: types.KindInt},
	)
}

// dpJobs builds the workload: one job per blocking-operator kind (plus a
// map-only job and an injected-store job), every one writing to its own
// output path.
func dpJobs(t *testing.T, rng *rand.Rand) []*Job {
	t.Helper()
	var jobs []*Job

	{ // map-only: filter + project
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/a", Schema: dpASchema()})
		f := p.Add(&physical.Operator{Kind: physical.OpFilter, Inputs: []int{l.ID},
			Pred:   expr.Binary(">", expr.ColIdx(1), expr.Lit(types.NewInt(int64(rng.Intn(40))))),
			Schema: l.Schema})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/maponly", Inputs: []int{f.ID}, Schema: f.Schema})
		jobs = append(jobs, mustJob(t, "maponly", p))
	}

	{ // group + algebraic aggregate (the combinable shape)
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/a", Schema: dpASchema()})
		sub := dpASchema()
		g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l.ID},
			Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
			Schema: types.Schema{Fields: []types.Field{
				{Name: "group"}, {Name: "A", Kind: types.KindBag, Sub: &sub}}}})
		fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
			Exprs: []*expr.Expr{expr.ColIdx(0),
				mustBind(t, expr.Call("COUNT", expr.Col("A")), g.Schema),
				mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("A"), "v")), g.Schema)},
			Schema: types.SchemaFromNames("group", "n", "total")})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/grouped", Inputs: []int{fe.ID}, Schema: fe.Schema})
		jobs = append(jobs, mustJob(t, "group", p))
	}

	{ // join (null keys dropped on both branches)
		p := physical.NewPlan()
		a := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/a", Schema: dpASchema()})
		b := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/b", Schema: dpBSchema()})
		j := p.Add(&physical.Operator{Kind: physical.OpJoin, Inputs: []int{a.ID, b.ID},
			Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
			Schema: dpASchema().Concat(dpBSchema())})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/joined", Inputs: []int{j.ID}, Schema: j.Schema})
		jobs = append(jobs, mustJob(t, "join", p))
	}

	{ // cogroup
		p := physical.NewPlan()
		a := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/a", Schema: dpASchema()})
		b := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/b", Schema: dpBSchema()})
		as, bs := dpASchema(), dpBSchema()
		cg := p.Add(&physical.Operator{Kind: physical.OpCoGroup, Inputs: []int{a.ID, b.ID},
			Keys: [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
			Schema: types.Schema{Fields: []types.Field{
				{Name: "group"},
				{Name: "as", Kind: types.KindBag, Sub: &as},
				{Name: "bs", Kind: types.KindBag, Sub: &bs}}}})
		fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{cg.ID},
			Exprs: []*expr.Expr{expr.ColIdx(0),
				mustBind(t, expr.Call("COUNT", expr.Col("as")), cg.Schema),
				mustBind(t, expr.Call("COUNT", expr.Col("bs")), cg.Schema)},
			Schema: types.SchemaFromNames("group", "na", "nb")})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/cogrouped", Inputs: []int{fe.ID}, Schema: fe.Schema})
		jobs = append(jobs, mustJob(t, "cogroup", p))
	}

	{ // distinct over a projection
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/a", Schema: dpASchema()})
		fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{l.ID},
			Exprs: []*expr.Expr{expr.ColIdx(0), expr.ColIdx(2)}, Schema: types.SchemaFromNames("k", "s")})
		d := p.Add(&physical.Operator{Kind: physical.OpDistinct, Inputs: []int{fe.ID}, Schema: fe.Schema})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/distinct", Inputs: []int{d.ID}, Schema: d.Schema})
		jobs = append(jobs, mustJob(t, "distinct", p))
	}

	{ // order by multiple columns with mixed directions
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/a", Schema: dpASchema()})
		o := p.Add(&physical.Operator{Kind: physical.OpOrder, Inputs: []int{l.ID},
			SortCols: []physical.SortCol{
				{Index: 0, Desc: rng.Intn(2) == 0},
				{Index: 2, Desc: rng.Intn(2) == 0},
				{Index: 1, Desc: rng.Intn(2) == 0},
			}, Schema: l.Schema})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/ordered", Inputs: []int{o.ID}, Schema: o.Schema})
		jobs = append(jobs, mustJob(t, "order", p))
	}

	{ // limit
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/b", Schema: dpBSchema()})
		lim := p.Add(&physical.Operator{Kind: physical.OpLimit, Inputs: []int{l.ID},
			N: int64(5 + rng.Intn(20)), Schema: l.Schema})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/limited", Inputs: []int{lim.ID}, Schema: l.Schema})
		jobs = append(jobs, mustJob(t, "limit", p))
	}

	{ // group with an injected map-side store riding along
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/b", Schema: dpBSchema()})
		fe := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{l.ID},
			Exprs: []*expr.Expr{expr.ColIdx(0)}, Schema: types.SchemaFromNames("k")})
		sp := p.Add(&physical.Operator{Kind: physical.OpSplit, Inputs: []int{fe.ID}, Schema: fe.Schema, Injected: true})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "restore/sub/dp", Inputs: []int{sp.ID}, Schema: fe.Schema, Injected: true})
		g := p.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{sp.ID},
			Keys: [][]*expr.Expr{{expr.ColIdx(0)}}, Schema: types.SchemaFromNames("group", "C")})
		fe2 := p.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
			Exprs:  []*expr.Expr{expr.ColIdx(0), expr.Call("COUNT", expr.ColIdx(1))},
			Schema: types.SchemaFromNames("group", "cnt")})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/injected", Inputs: []int{fe2.ID}, Schema: fe2.Schema})
		jobs = append(jobs, mustJob(t, "injected", p))
	}

	return jobs
}

// dpRunPlane executes the whole seed-derived workload on one engine plane
// and captures everything observable about it. Randomized engine knobs
// (reduce partitioning, combiner toggle) are drawn from the same seed on
// both planes, so the two runs differ only in the data-plane
// implementation.
func dpRunPlane(t *testing.T, seed int64, serial bool) *planeSummary {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fs := dfs.New()
	dpSeedData(t, fs, rng)
	e := NewEngine(fs, cluster.Default())
	e.SerialDataPlane = serial
	e.ReduceTasks = 1 + rng.Intn(6)
	e.DisableCombiner = rng.Intn(3) == 0
	// Draw the parallelism knobs unconditionally so both planes consume the
	// same rng stream and dpJobs builds identical workloads.
	mapPar, redPar := 1+rng.Intn(4), 1+rng.Intn(4)
	if !serial {
		e.MapParallelism = mapPar
		e.ReduceParallelism = redPar
	}
	sum := &planeSummary{rows: make(map[string][]string)}
	for _, job := range dpJobs(t, rng) {
		res, err := e.RunJob(context.Background(), job)
		if err != nil {
			sum.errs = append(sum.errs, err.Error())
			sum.results = append(sum.results, nil)
			continue
		}
		sum.errs = append(sum.errs, "")
		sum.results = append(sum.results, res)
		for _, st := range job.Plan.Sinks() {
			rows, err := fs.ReadAll(st.Path)
			if err != nil {
				t.Fatalf("read %s: %v", st.Path, err)
			}
			lines := make([]string, len(rows))
			for i, r := range rows {
				lines[i] = types.FormatTSV(r)
			}
			sum.rows[st.Path] = lines
		}
	}
	var buf bytes.Buffer
	if err := fs.Export(&buf); err != nil {
		t.Fatal(err)
	}
	sum.export = buf.Bytes()
	return sum
}

// TestEngineDataPlaneDifferential pins the parallel-merge data plane
// byte-identical to the serial single-sort oracle across seeds: same DFS
// export bytes (partition-exact output), same rows in the same partition
// order, same JobResult statistics and simulated times.
func TestEngineDataPlaneDifferential(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			oracle := dpRunPlane(t, seed, true)
			got := dpRunPlane(t, seed, false)

			if !reflect.DeepEqual(oracle.errs, got.errs) {
				t.Fatalf("error disagreement:\noracle: %v\nplane:  %v", oracle.errs, got.errs)
			}
			for i := range oracle.results {
				or, gr := oracle.results[i], got.results[i]
				if or == nil || gr == nil {
					continue
				}
				if or.Stats != gr.Stats {
					t.Errorf("job %d stats differ:\noracle: %+v\nplane:  %+v", i, or.Stats, gr.Stats)
				}
				if or.Times != gr.Times {
					t.Errorf("job %d simulated times differ: %v vs %v", i, or.Times, gr.Times)
				}
				if !reflect.DeepEqual(or.StoreBytes, gr.StoreBytes) {
					t.Errorf("job %d store bytes differ:\noracle: %v\nplane:  %v", i, or.StoreBytes, gr.StoreBytes)
				}
				if or.InjectedStoreBytes != gr.InjectedStoreBytes {
					t.Errorf("job %d injected bytes differ: %d vs %d", i, or.InjectedStoreBytes, gr.InjectedStoreBytes)
				}
			}
			for path, want := range oracle.rows {
				if gotRows := got.rows[path]; strings.Join(gotRows, "\n") != strings.Join(want, "\n") {
					t.Errorf("%s rows differ:\noracle: %v\nplane:  %v", path, want, gotRows)
				}
			}
			if !bytes.Equal(oracle.export, got.export) {
				t.Error("DFS export bytes differ between planes")
			}
		})
	}
}

// TestEngineMapPhaseCollectsAllErrors pins the errors.Join regression: when
// several map tasks fail, the job error must report every failed task, not
// whichever error won the race onto a channel.
func TestEngineMapPhaseCollectsAllErrors(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "parallel"
		if serial {
			name = "serial"
		}
		t.Run(name, func(t *testing.T) {
			e := newTestEngine()
			e.SerialDataPlane = serial
			seedViews(t, e.FS) // 3 partitions -> 3 map tasks
			// Corrupt partitions 0 and 2 so two independent tasks fail to
			// decode their input.
			for _, part := range []int{0, 2} {
				if err := e.FS.CommitPartition("data/views", part, []byte{0xff, 0xff, 0xff, 0xff}, 1); err != nil {
					t.Fatal(err)
				}
			}
			p := physical.NewPlan()
			l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
			d := p.Add(&physical.Operator{Kind: physical.OpDistinct, Inputs: []int{l.ID}, Schema: l.Schema})
			p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/multierr", Inputs: []int{d.ID}, Schema: d.Schema})
			_, err := e.RunJob(context.Background(), mustJob(t, "multierr", p))
			if err == nil {
				t.Fatal("job over corrupt input succeeded")
			}
			for _, want := range []string{"map task 0", "map task 2"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error missing %q: %v", want, err)
				}
			}
			if strings.Contains(err.Error(), "map task 1") {
				t.Errorf("healthy task reported as failed: %v", err)
			}
		})
	}
}
