package mapred

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/physical"
	"repro/internal/types"
)

// fuzzValue draws a random shuffle-key value hitting every comparator
// path: nulls, bools, small colliding ints, ints past 2^53 (where the
// float64 comparison collapses neighbors), floats that equal ints
// numerically, NaN-adjacent extremes, strings with shared prefixes, and
// nested tuples that force the generic fallback.
func fuzzValue(rng *rand.Rand, depth int) types.Value {
	switch rng.Intn(9) {
	case 0:
		return types.Null()
	case 1:
		return types.NewBool(rng.Intn(2) == 0)
	case 2:
		return types.NewInt(int64(rng.Intn(5)) - 2)
	case 3:
		// Past 2^53: distinct ints that collide under float64 conversion.
		return types.NewInt((int64(1) << 53) + int64(rng.Intn(3)))
	case 4:
		return types.NewInt(math.MinInt64 + int64(rng.Intn(3)))
	case 5:
		return types.NewFloat(float64(rng.Intn(5)) - 2) // numeric tie with case 2
	case 6:
		return types.NewFloat(rng.NormFloat64() * 1e10)
	case 7:
		pre := []string{"", "a", "ab", "ab\x00", "ユニ"}
		return types.NewString(pre[rng.Intn(len(pre))] + pre[rng.Intn(len(pre))])
	default:
		if depth <= 0 {
			return types.NewString("leaf")
		}
		sub := make(types.Tuple, rng.Intn(3))
		for i := range sub {
			sub[i] = fuzzValue(rng, depth-1)
		}
		return types.NewTuple(sub)
	}
}

func fuzzTuple(rng *rand.Rand, maxCols int) types.Tuple {
	t := make(types.Tuple, rng.Intn(maxCols+1))
	for i := range t {
		t[i] = fuzzValue(rng, 2)
	}
	return t
}

// referenceCompareRec is the pre-compilation shuffle order, restated
// verbatim from the serial plane's sortShuffle closure chain: CompareTuples
// (or the Order SortCols loop over types.Compare), then tag, then seq. The
// fuzz target holds the compiled jobComparator to this oracle.
func referenceCompareRec(b *physical.Operator, x, y *shuffleRec) int {
	cmpKey := func(a, bk types.Tuple) int { return types.CompareTuples(a, bk) }
	if b != nil && b.Kind == physical.OpOrder {
		cmpKey = func(kx, ky types.Tuple) int {
			for i, sc := range b.SortCols {
				var c int
				if i < len(kx) && i < len(ky) {
					c = types.Compare(kx[i], ky[i])
				}
				if sc.Desc {
					c = -c
				}
				if c != 0 {
					return c
				}
			}
			return 0
		}
	}
	if c := cmpKey(x.key, y.key); c != 0 {
		return c
	}
	if x.tag != y.tag {
		if x.tag < y.tag {
			return -1
		}
		return 1
	}
	switch {
	case x.seq < y.seq:
		return -1
	case x.seq > y.seq:
		return 1
	default:
		return 0
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

// FuzzShuffleComparator drives randomized record pairs through both the
// compiled jobComparator and the reference closure-chain order and demands
// sign agreement plus antisymmetry, for both the Order comparator (random
// column count and per-column directions) and the generic
// CompareTuples-based one. Any divergence would let the parallel plane's
// non-stable sorts reorder output relative to the serial oracle.
func FuzzShuffleComparator(f *testing.F) {
	f.Add(int64(1), uint64(0), false)
	f.Add(int64(2), uint64(0x5a), true)
	f.Add(int64(3), uint64(math.MaxUint64), true)
	f.Add(int64(-7), uint64(1)<<53, false)
	f.Add(int64(42), uint64(0b10110), true)
	f.Fuzz(func(t *testing.T, seed int64, shape uint64, order bool) {
		rng := rand.New(rand.NewSource(seed ^ int64(shape)))
		var blocking *physical.Operator
		maxCols := 4
		if order {
			ncols := 1 + int(shape%4)
			maxCols = ncols + 1 // sometimes shorter/longer than SortCols
			cols := make([]physical.SortCol, ncols)
			for i := range cols {
				cols[i] = physical.SortCol{Index: i, Desc: shape>>(8+i)&1 == 1}
			}
			blocking = &physical.Operator{Kind: physical.OpOrder, SortCols: cols}
		}
		cmp := compileComparator(blocking)

		recs := make([]shuffleRec, 2+rng.Intn(6))
		for i := range recs {
			recs[i] = shuffleRec{
				key: fuzzTuple(rng, maxCols),
				tag: rng.Intn(3),
				seq: int64(rng.Intn(4))<<32 | int64(rng.Intn(3)),
			}
		}
		for i := range recs {
			for j := range recs {
				got := cmp.compareRec(&recs[i], &recs[j])
				want := referenceCompareRec(blocking, &recs[i], &recs[j])
				if sign(got) != sign(want) {
					t.Fatalf("compiled=%d reference=%d for recs[%d]=%+v vs recs[%d]=%+v (order=%v)",
						got, want, i, recs[i], j, recs[j], order)
				}
				if back := cmp.compareRec(&recs[j], &recs[i]); sign(back) != -sign(got) {
					t.Fatalf("not antisymmetric: cmp(i,j)=%d cmp(j,i)=%d", got, back)
				}
			}
		}

		// Sorting the batch with the compiled comparator must yield a
		// sequence the reference order also considers sorted.
		sortRun(cmp, recs)
		if !sort.SliceIsSorted(recs, func(i, j int) bool {
			return referenceCompareRec(blocking, &recs[i], &recs[j]) < 0
		}) {
			t.Fatalf("compiled sort violates reference order: %+v", recs)
		}
	})
}
