package mapred

import (
	"context"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/types"
)

// buildQ2Workflow compiles the paper's Q2 by hand: job1 joins users with
// views into a temp file; job2 groups the join result by name and sums
// revenue. Mirrors Figure 3.
func buildQ2Workflow(t *testing.T) *Workflow {
	t.Helper()
	// Job 1: join.
	p1 := physical.NewPlan()
	u := p1.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/users", Schema: usersSchema()})
	v := p1.Add(&physical.Operator{Kind: physical.OpLoad, Path: "data/views", Schema: viewsSchema()})
	fu := p1.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{u.ID},
		Exprs: []*expr.Expr{expr.ColIdx(0)}, Names: []string{"name"},
		Schema: types.SchemaFromNames("name")})
	j := p1.Add(&physical.Operator{Kind: physical.OpJoin, Inputs: []int{fu.ID, v.ID},
		Keys:   [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}},
		Schema: types.SchemaFromNames("name", "user", "rev")})
	p1.Add(&physical.Operator{Kind: physical.OpStore, Path: "tmp/q2_join", Inputs: []int{j.ID}, Schema: j.Schema})
	job1 := mustJob(t, "q2-join", p1)

	// Job 2: group + aggregate.
	p2 := physical.NewPlan()
	joinSchema := types.NewSchema(
		types.Field{Name: "name", Kind: types.KindString},
		types.Field{Name: "user", Kind: types.KindString},
		types.Field{Name: "rev", Kind: types.KindInt},
	)
	l2 := p2.Add(&physical.Operator{Kind: physical.OpLoad, Path: "tmp/q2_join", Schema: joinSchema})
	sub := joinSchema
	g := p2.Add(&physical.Operator{Kind: physical.OpGroup, Inputs: []int{l2.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}},
		Schema: types.Schema{Fields: []types.Field{
			{Name: "group"}, {Name: "C", Kind: types.KindBag, Sub: &sub}}}})
	fe := p2.Add(&physical.Operator{Kind: physical.OpForeach, Inputs: []int{g.ID},
		Exprs:  []*expr.Expr{expr.ColIdx(0), mustBind(t, expr.Call("SUM", expr.BagProj(expr.Col("C"), "rev")), g.Schema)},
		Schema: types.SchemaFromNames("group", "total")})
	p2.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/q2", Inputs: []int{fe.ID}, Schema: fe.Schema})
	job2 := mustJob(t, "q2-group", p2)

	return &Workflow{Jobs: []*Job{job2, job1}} // deliberately out of order
}

func TestWorkflowDependenciesAndOrder(t *testing.T) {
	w := buildQ2Workflow(t)
	deps := w.DependencyMap()
	if len(deps["q2-group"]) != 1 || deps["q2-group"][0] != "q2-join" {
		t.Errorf("deps = %v", deps)
	}
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0].ID != "q2-join" || order[1].ID != "q2-group" {
		t.Errorf("order = %v", []string{order[0].ID, order[1].ID})
	}
}

func TestRunWorkflowQ2(t *testing.T) {
	e := newTestEngine()
	seedUsers(t, e.FS)
	seedViews(t, e.FS)
	w := buildQ2Workflow(t)
	res, err := e.RunWorkflow(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	got := readSorted(t, e.FS, "out/q2")
	want := []string{"alice\t15", "bob\t7", "carol\t1"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("q2 = %v, want %v", got, want)
	}
	if len(res.Order) != 2 || res.Order[0] != "q2-join" {
		t.Errorf("order = %v", res.Order)
	}
	// Equation 1 over a chain: total = job1 + job2.
	sum := res.JobResults["q2-join"].Times.Total + res.JobResults["q2-group"].Times.Total
	if res.SimulatedTime != sum {
		t.Errorf("critical path %v != chain sum %v", res.SimulatedTime, sum)
	}
	if res.TotalInputBytes == 0 || res.TotalOutputBytes == 0 {
		t.Errorf("workflow counters empty: %+v", res)
	}
}

func TestWorkflowCycleDetected(t *testing.T) {
	p1 := physical.NewPlan()
	a := p1.Add(&physical.Operator{Kind: physical.OpLoad, Path: "x", Schema: types.SchemaFromNames("a")})
	p1.Add(&physical.Operator{Kind: physical.OpStore, Path: "y", Inputs: []int{a.ID}, Schema: types.SchemaFromNames("a")})
	j1 := mustJob(t, "j1", p1)

	p2 := physical.NewPlan()
	b := p2.Add(&physical.Operator{Kind: physical.OpLoad, Path: "y", Schema: types.SchemaFromNames("a")})
	p2.Add(&physical.Operator{Kind: physical.OpStore, Path: "x", Inputs: []int{b.ID}, Schema: types.SchemaFromNames("a")})
	j2 := mustJob(t, "j2", p2)

	w := &Workflow{Jobs: []*Job{j1, j2}}
	if _, err := w.TopoOrder(); err == nil {
		t.Error("cyclic workflow accepted")
	}
}

func TestWorkflowDuplicateJobID(t *testing.T) {
	p := physical.NewPlan()
	a := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "x", Schema: types.SchemaFromNames("a")})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "y", Inputs: []int{a.ID}, Schema: types.SchemaFromNames("a")})
	j1 := mustJob(t, "dup", p)
	j2 := mustJob(t, "dup", p.Clone())
	w := &Workflow{Jobs: []*Job{j1, j2}}
	if _, err := w.TopoOrder(); err == nil {
		t.Error("duplicate job ids accepted")
	}
}

func TestWorkflowDiamondCriticalPath(t *testing.T) {
	e := newTestEngine()
	// Two independent producers with very different sizes, one consumer.
	small := []types.Tuple{{types.NewString("k"), types.NewInt(1)}}
	var big []types.Tuple
	for i := 0; i < 2000; i++ {
		big = append(big, types.Tuple{types.NewString("k"), types.NewInt(int64(i))})
	}
	schema := types.NewSchema(types.Field{Name: "k", Kind: types.KindString}, types.Field{Name: "v", Kind: types.KindInt})
	if err := e.FS.WriteTuples("data/small", schema, small); err != nil {
		t.Fatal(err)
	}
	if err := e.FS.WritePartitioned("data/big", schema, big, 4); err != nil {
		t.Fatal(err)
	}
	mk := func(id, in, out string) *Job {
		p := physical.NewPlan()
		l := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: in, Schema: schema})
		p.Add(&physical.Operator{Kind: physical.OpStore, Path: out, Inputs: []int{l.ID}, Schema: schema})
		return mustJob(t, id, p)
	}
	j1 := mk("copy-small", "data/small", "tmp/s")
	j2 := mk("copy-big", "data/big", "tmp/b")
	// Consumer joins both.
	p := physical.NewPlan()
	a := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "tmp/s", Schema: schema})
	b := p.Add(&physical.Operator{Kind: physical.OpLoad, Path: "tmp/b", Schema: schema})
	j := p.Add(&physical.Operator{Kind: physical.OpJoin, Inputs: []int{a.ID, b.ID},
		Keys: [][]*expr.Expr{{expr.ColIdx(0)}, {expr.ColIdx(0)}}, Schema: schema.Concat(schema)})
	p.Add(&physical.Operator{Kind: physical.OpStore, Path: "out/d", Inputs: []int{j.ID}, Schema: j.Schema})
	j3 := mustJob(t, "join", p)

	res, err := e.RunWorkflow(context.Background(), &Workflow{Jobs: []*Job{j3, j1, j2}})
	if err != nil {
		t.Fatal(err)
	}
	// Equation 1: join waits for the slower producer only.
	slow := res.JobResults["copy-big"].Times.Total
	if s := res.JobResults["copy-small"].Times.Total; s > slow {
		slow = s
	}
	want := slow + res.JobResults["join"].Times.Total
	if res.SimulatedTime != want {
		t.Errorf("critical path = %v, want %v", res.SimulatedTime, want)
	}
}
