package mapred

import (
	"sort"
	"sync"
)

// maxPooledRun caps the capacity of run slices the pools retain. Larger
// slices (a few MB of records) are left to the GC rather than pinned in the
// pool forever by one oversized job.
const maxPooledRun = 1 << 17

// recSlicePool recycles shuffle-run buffers across map tasks, reduce
// merges, and jobs. Slices are cleared before being pooled so pooled spines
// never pin key/value tuples of finished jobs.
var recSlicePool = sync.Pool{
	New: func() any {
		s := make([]shuffleRec, 0, 256)
		return &s
	},
}

// getRecSlice returns an empty run buffer with at least capHint capacity
// when the pooled one is smaller.
func getRecSlice(capHint int) []shuffleRec {
	sp := recSlicePool.Get().(*[]shuffleRec)
	s := (*sp)[:0]
	if cap(s) < capHint && capHint <= maxPooledRun {
		s = make([]shuffleRec, 0, capHint)
	}
	return s
}

// putRecSlice clears and pools a run buffer for reuse.
func putRecSlice(s []shuffleRec) {
	if cap(s) == 0 || cap(s) > maxPooledRun {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	recSlicePool.Put(&s)
}

// scratchPool recycles the per-task encode scratch buffers (shuffle byte
// accounting and store framing).
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getScratch returns an empty encode scratch buffer.
func getScratch() []byte { return (*scratchPool.Get().(*[]byte))[:0] }

// putScratch pools an encode scratch buffer for reuse.
func putScratch(b []byte) {
	if cap(b) == 0 || cap(b) > 1<<20 {
		return
	}
	b = b[:0]
	scratchPool.Put(&b)
}

// mergeRuns merges pre-sorted shuffle runs into dst in comparator order —
// the O(n log k) reduce-side merge of the Hadoop shuffle. Because the
// comparator is a strict total order (seq is globally unique), the merge of
// locally sorted runs is byte-for-byte the same sequence a global sort of
// the concatenation would produce.
func mergeRuns(cmp *jobComparator, runs [][]shuffleRec, dst []shuffleRec) []shuffleRec {
	switch len(runs) {
	case 0:
		return dst
	case 1:
		return append(dst, runs[0]...)
	case 2:
		a, b := runs[0], runs[1]
		for len(a) > 0 && len(b) > 0 {
			if cmp.compareRec(&a[0], &b[0]) <= 0 {
				dst = append(dst, a[0])
				a = a[1:]
			} else {
				dst = append(dst, b[0])
				b = b[1:]
			}
		}
		dst = append(dst, a...)
		return append(dst, b...)
	}

	// k-way: a binary min-heap of run indices ordered by each run's head.
	heads := make([]int, len(runs)) // next unconsumed index per run
	heap := make([]int, 0, len(runs))
	less := func(ri, rj int) bool {
		return cmp.compareRec(&runs[ri][heads[ri]], &runs[rj][heads[rj]]) < 0
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for ri, run := range runs {
		if len(run) > 0 {
			heap = append(heap, ri)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(heap) > 0 {
		ri := heap[0]
		dst = append(dst, runs[ri][heads[ri]])
		heads[ri]++
		if heads[ri] == len(runs[ri]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return dst
}

// sortRun locally sorts one map task's run for one reduce partition.
func sortRun(cmp *jobComparator, recs []shuffleRec) {
	sort.Sort(recSorter{recs: recs, cmp: cmp})
}
