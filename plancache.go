package restore

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/mapred"
)

// maxTextAliases bounds how many distinct script texts one cached plan
// indexes. Semantically identical scripts (whitespace, alias names) compile
// to the same canonical plan and share one cached entry; without a bound an
// adversarial stream of trivially-varied copies of one query could grow the
// text index without growing the plan LRU.
const maxTextAliases = 8

// cachedPlan is one cached preparation: the immutable compiled workflow
// template plus everything needed to mint an independent Prepared from it.
// The template's plans are never mutated — every execution path clones job
// plans before rewriting them — so many concurrent clones may read it.
type cachedPlan struct {
	key       string // canonical FlightKey
	requested []string
	tmpBase   string // the template's private tmp namespace, remapped per clone
	workflow  *mapred.Workflow
	texts     []string // script texts indexed to this plan (bounded)
}

// planCache is a bounded LRU of compiled plans keyed on the canonical
// FlightKey, with an exact-text alias index in front: a lookup by script
// text lands on the cached plan directly, and distinct texts that compile
// to the same canonical plan share one slot. Hits skip parse, logical
// planning, and MapReduce compilation entirely; only the per-query mutable
// bits (the restore/tmp/qN namespace and the derived access set) are
// re-minted per clone.
type planCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used; values are *cachedPlan
	byKey  map[string]*list.Element
	byText map[string]*list.Element
}

// newPlanCache builds a cache holding at most capacity canonical plans.
func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:    capacity,
		ll:     list.New(),
		byKey:  make(map[string]*list.Element),
		byText: make(map[string]*list.Element),
	}
}

// lookup returns the cached plan compiled from src (exact text match),
// promoting it to most-recently-used; nil on a miss.
func (c *planCache) lookup(src string) *cachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byText[src]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cachedPlan)
}

// add caches p's compiled form under its flight key with src as a text
// alias, evicting the least-recently-used plan when over capacity. A plan
// already cached under the same key (a semantically identical script with
// different text) gains the new text alias instead of a second slot.
func (c *planCache) add(src string, p *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[p.flightKey]; ok {
		cp := el.Value.(*cachedPlan)
		if _, indexed := c.byText[src]; !indexed && len(cp.texts) < maxTextAliases {
			cp.texts = append(cp.texts, src)
			c.byText[src] = el
		}
		c.ll.MoveToFront(el)
		return
	}
	cp := &cachedPlan{
		key:       p.flightKey,
		requested: append([]string(nil), p.requested...),
		tmpBase:   p.tmpBase,
		workflow:  p.workflow,
		texts:     []string{src},
	}
	el := c.ll.PushFront(cp)
	c.byKey[cp.key] = el
	c.byText[src] = el
	for c.ll.Len() > c.cap {
		c.evictOldest()
	}
}

// evictOldest drops the least-recently-used plan and its text aliases.
// Caller holds c.mu.
func (c *planCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	cp := el.Value.(*cachedPlan)
	delete(c.byKey, cp.key)
	for _, t := range cp.texts {
		if c.byText[t] == el {
			delete(c.byText, t)
		}
	}
}

// len reports how many canonical plans are cached.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// remapTmpPath rewrites a path under the template's private tmp namespace
// into the clone's; all other paths pass through.
func remapTmpPath(p, oldBase, newBase string) string {
	if rest, ok := strings.CutPrefix(p, oldBase); ok && (rest == "" || rest[0] == '/') {
		return newBase + rest
	}
	return p
}
