package restore

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPathsConflict(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"out/a", "out/a", true},
		{"out/a", "out/a/part0", true},
		{"out/a/part0", "out/a", true},
		{"out/a", "out/ab", false},
		{"out/ab", "out/a", false},
		{"out/a", "out/b", false},
		{"restore/tmp/q1", "restore/tmp/q10", false},
		{"restore/tmp/q1", "restore/tmp/q1/j0", true},
		{"a", "a/b/c/d", true},
		{"", "", true}, // degenerate: identical empties conflict
	}
	for _, c := range cases {
		if got := PathsConflict(c.a, c.b); got != c.want {
			t.Errorf("PathsConflict(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAccessSetConflicts(t *testing.T) {
	read := func(ps ...string) AccessSet { return AccessSet{Reads: ps} }
	write := func(ps ...string) AccessSet { return AccessSet{Writes: ps} }

	if read("in/a").ConflictsWith(read("in/a")) {
		t.Error("read/read of the same path must not conflict")
	}
	if !write("out/a").ConflictsWith(write("out/a/x")) {
		t.Error("write/write prefix overlap must conflict")
	}
	if !write("in/a").ConflictsWith(read("in/a")) {
		t.Error("write/read must conflict")
	}
	if !read("in/a").ConflictsWith(write("in/a")) {
		t.Error("read/write must conflict")
	}
	if write("out/a").ConflictsWith(read("in/a")) {
		t.Error("disjoint sets must not conflict")
	}
	if !UniversalAccess().ConflictsWith(AccessSet{}) {
		t.Error("universal must conflict with everything, even the empty set")
	}
	if !read("in/a").ConflictsWith(UniversalAccess()) {
		t.Error("everything must conflict with universal")
	}
}

// TestLeaseTableDisjointConcurrency checks that disjoint leases are held
// simultaneously while conflicting ones exclude each other.
func TestLeaseTableDisjointConcurrency(t *testing.T) {
	var lt leaseTable

	a := lt.acquire(AccessSet{Writes: []string{"out/a"}})
	b := lt.acquire(AccessSet{Writes: []string{"out/b"}})
	if lt.inflightCount() != 2 {
		t.Fatalf("disjoint leases in flight = %d, want 2", lt.inflightCount())
	}

	// A conflicting acquire must block until both holders release.
	gotC := make(chan *execLease)
	go func() { gotC <- lt.acquire(AccessSet{Reads: []string{"out/a"}, Writes: []string{"out/b/x"}}) }()
	select {
	case <-gotC:
		t.Fatal("conflicting lease granted while conflicts in flight")
	case <-time.After(20 * time.Millisecond):
	}
	lt.release(a)
	select {
	case <-gotC:
		t.Fatal("lease granted while write overlap still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	lt.release(b)
	c := <-gotC
	lt.release(c)
	if lt.inflightCount() != 0 {
		t.Fatalf("leases left in flight: %d", lt.inflightCount())
	}
}

// TestLeaseTableExtendReads covers the mid-run read extension the rewriter
// uses for user-named stored outputs: it must fail while a conflicting
// writer is in flight, succeed otherwise, and once granted make later
// conflicting writers wait.
func TestLeaseTableExtendReads(t *testing.T) {
	var lt leaseTable
	reader := lt.acquire(AccessSet{Reads: []string{"in/a"}, Writes: []string{"out/q"}})
	writer := lt.acquire(AccessSet{Writes: []string{"out/x"}})

	if lt.extendReads(reader, "out/x") {
		t.Fatal("extension granted while a conflicting writer is in flight")
	}
	if lt.extendReads(reader, "out/x/part0") {
		t.Fatal("prefix-overlapping extension granted while a conflicting writer is in flight")
	}
	lt.release(writer)
	if !lt.extendReads(reader, "out/x") {
		t.Fatal("extension refused with no conflicting writer in flight")
	}

	// A new writer on the extended path must now wait for the reader.
	gotW := make(chan *execLease)
	go func() { gotW <- lt.acquire(AccessSet{Writes: []string{"out/x"}}) }()
	select {
	case <-gotW:
		t.Fatal("writer admitted against an extended read lease")
	case <-time.After(20 * time.Millisecond):
	}
	lt.release(reader)
	lt.release(<-gotW)
}

// TestLeaseTableUniversalDrains checks the drain barrier: a universal
// acquire waits for all in-flight leases, and later disjoint acquires queue
// behind it instead of starving it.
func TestLeaseTableUniversalDrains(t *testing.T) {
	var lt leaseTable
	a := lt.acquire(AccessSet{Writes: []string{"out/a"}})

	var uniGranted, lateGranted atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	uniReady := make(chan struct{})
	go func() {
		defer wg.Done()
		close(uniReady)
		u := lt.acquire(UniversalAccess())
		uniGranted.Store(true)
		if lateGranted.Load() {
			t.Error("later disjoint lease overtook the waiting universal")
		}
		lt.release(u)
	}()
	<-uniReady
	time.Sleep(10 * time.Millisecond) // let the universal join the wait queue
	go func() {
		defer wg.Done()
		l := lt.acquire(AccessSet{Writes: []string{"out/b"}})
		lateGranted.Store(true)
		if !uniGranted.Load() {
			t.Error("disjoint lease granted before the earlier universal")
		}
		lt.release(l)
	}()
	time.Sleep(10 * time.Millisecond)
	if uniGranted.Load() {
		t.Fatal("universal granted while a lease is in flight")
	}
	lt.release(a)
	wg.Wait()
}
