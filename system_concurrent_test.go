package restore_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	restore "repro"
	"repro/internal/pigmix"
)

var tinyPigmix = pigmix.GenConfig{
	PageViewsRows: 400,
	Users:         60,
	PowerUsers:    10,
	WideRows:      80,
	Partitions:    2,
	Seed:          1,
}

// TestConcurrentExecute runs the PigMix variant stream from many goroutines
// against one System (run with -race to verify the concurrency contract):
// preparation is lock-free, execution serializes, and every query must see a
// consistent repository and DFS.
func TestConcurrentExecute(t *testing.T) {
	sys := restore.New()
	if err := pigmix.Generate(sys.FS(), tinyPigmix); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(pigmix.VariantNames()))
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, name := range pigmix.VariantNames() {
				// Distinct outputs per worker so the workload overlaps in
				// computation (shared joins and aggregates) but not in store
				// paths — the repository, not output aliasing, must carry
				// the reuse.
				src, err := pigmix.Query(name, fmt.Sprintf("out/%s_w%d", name, w))
				if err != nil {
					errs <- err
					return
				}
				res, err := sys.Execute(src)
				if err != nil {
					errs <- fmt.Errorf("worker %d %s: %w", w, name, err)
					return
				}
				// Interleaved Explain exercises the lock-free read path.
				if _, err := sys.Explain(src); err != nil {
					errs <- err
					return
				}
				if len(res.Outputs) == 0 {
					errs <- fmt.Errorf("worker %d %s: no outputs", w, name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := sys.Stats()
	if want := int64(workers * len(pigmix.VariantNames())); stats.Queries != want {
		t.Errorf("stats.Queries = %d, want %d", stats.Queries, want)
	}
	if stats.QueriesReused == 0 {
		t.Error("no reuse across the concurrent stream")
	}
	if sys.Repository().Len() == 0 {
		t.Error("repository empty after the stream")
	}
}

// TestRepositorySaveLoadRoundTrip persists a learned repository plus DFS,
// loads both into a fresh System ("restart"), and checks the repository
// comes back byte-for-byte: same match-scan order, same statistics — and
// still answers queries with reuse instead of being evicted.
func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	sys := restore.New()
	if err := pigmix.Generate(sys.FS(), tinyPigmix); err != nil {
		t.Fatal(err)
	}
	for i, name := range pigmix.VariantNames() {
		src, err := pigmix.Query(name, fmt.Sprintf("out/%s_%d", name, i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Execute(src); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.Repository().Ordered()
	if len(before) == 0 {
		t.Fatal("repository empty after the stream")
	}

	var repoBuf, dfsBuf bytes.Buffer
	if err := sys.SaveState(&repoBuf, &dfsBuf); err != nil {
		t.Fatal(err)
	}

	sys2 := restore.New()
	if err := sys2.FS().Import(bytes.NewReader(dfsBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadRepositoryFrom(bytes.NewReader(repoBuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	after := sys2.Repository().Ordered()
	if len(after) != len(before) {
		t.Fatalf("entries: %d -> %d across round trip", len(before), len(after))
	}
	for i := range before {
		a, b := before[i], after[i]
		if a.ID != b.ID {
			t.Errorf("order differs at %d: %s vs %s", i, a.ID, b.ID)
		}
		if a.OutputPath != b.OutputPath || a.InputBytes != b.InputBytes ||
			a.OutputBytes != b.OutputBytes || a.ExecTime != b.ExecTime ||
			a.UseCount != b.UseCount || a.CreatedSeq != b.CreatedSeq ||
			a.LastUsedSeq != b.LastUsedSeq || a.OwnsFile != b.OwnsFile {
			t.Errorf("entry %s statistics differ: %+v vs %+v", a.ID, a, b)
		}
	}

	// The restarted system must reuse, not recompute (and not evict: the
	// imported DFS preserves the input versions Rule 4 checks).
	src, err := pigmix.Query("L3", "out/roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys2.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 0 {
		t.Errorf("round trip invalidated entries: %v", res.Evicted)
	}
	if len(res.Rewrites) == 0 {
		t.Error("restarted system applied no rewrites to a repeated query")
	}
}
