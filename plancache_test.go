package restore

import (
	"fmt"
	"testing"
)

func seedPlanCacheSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	if err := sys.LoadTSV("in/pc", "k, v:int", []string{"a\t1", "b\t2", "c\t3"}, 1); err != nil {
		t.Fatal(err)
	}
	return sys
}

func pcScript(i int) string {
	return fmt.Sprintf("A = load 'in/pc' as (k, v:int);\nB = filter A by v > %d;\nstore B into 'out/pc%d';\n", i, i)
}

// TestPlanCacheLRUEviction pins the bound: a cache of capacity N holds the N
// most recently used canonical plans; the evicted one recompiles (a miss)
// and re-enters.
func TestPlanCacheLRUEviction(t *testing.T) {
	sys := seedPlanCacheSystem(t)
	c := newPlanCache(2)
	sys.plans = c

	for i := 0; i < 3; i++ {
		if _, hit, err := sys.PrepareCached(pcScript(i)); err != nil || hit {
			t.Fatalf("script %d: first prepare hit=%v err=%v", i, hit, err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d plans, want capacity 2", c.len())
	}
	// Script 0 was least recently used and must be gone; 1 and 2 must hit.
	if _, hit, err := sys.PrepareCached(pcScript(1)); err != nil || !hit {
		t.Errorf("script 1: hit=%v err=%v, want a hit", hit, err)
	}
	if _, hit, err := sys.PrepareCached(pcScript(2)); err != nil || !hit {
		t.Errorf("script 2: hit=%v err=%v, want a hit", hit, err)
	}
	if _, hit, err := sys.PrepareCached(pcScript(0)); err != nil || hit {
		t.Errorf("script 0: hit=%v err=%v, want a miss after LRU eviction", hit, err)
	}
}

// TestPlanCacheSharesSlotAcrossTexts: semantically identical scripts with
// different text share one canonical slot (the second text becomes an
// alias, not a second plan), and the alias index is bounded.
func TestPlanCacheSharesSlotAcrossTexts(t *testing.T) {
	sys := seedPlanCacheSystem(t)
	c := newPlanCache(4)
	sys.plans = c

	base := "A = load 'in/pc' as (k, v:int);\nB = filter A by v > 1;\nstore B into 'out/share';\n"
	if _, hit, err := sys.PrepareCached(base); err != nil || hit {
		t.Fatalf("base prepare hit=%v err=%v", hit, err)
	}
	// Trivially varied copies: same canonical plan, distinct text. Each
	// first sight is a miss (text-keyed lookup) but must not grow the LRU.
	for i := 0; i < maxTextAliases+4; i++ {
		variant := fmt.Sprintf("  alias%d = load 'in/pc' as (kk, vv:int);   beta = filter alias%d by vv > 1; store beta into 'out/share';", i, i)
		p, hit, err := sys.PrepareCached(variant)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if hit {
			t.Fatalf("variant %d: unexpected text-index hit on first sight", i)
		}
		if c.len() != 1 {
			t.Fatalf("variant %d: cache grew to %d slots for one canonical plan", i, c.len())
		}
		if i < maxTextAliases-1 {
			// Within the alias bound the variant text is indexed: repeat hits.
			if _, hit, err := sys.PrepareCached(variant); err != nil || !hit {
				t.Errorf("variant %d repeat: hit=%v err=%v, want a hit", i, hit, err)
			}
		}
		_ = p
	}
	if got := len(c.byText); got > maxTextAliases {
		t.Errorf("text alias index holds %d entries, want <= %d", got, maxTextAliases)
	}
}

// TestPlanCacheClonesAreIndependent: two Prepareds cloned from one cached
// template must not share a tmp namespace — their executions write disjoint
// restore/tmp/qN trees and may run concurrently.
func TestPlanCacheClonesAreIndependent(t *testing.T) {
	sys := seedPlanCacheSystem(t)
	// A multi-job script so the tmp namespace actually appears in job paths.
	src := "A = load 'in/pc' as (k, v:int);\nB = group A by k;\nC = foreach B generate group, COUNT(A);\nD = order C by $1;\nstore D into 'out/multi';\n"
	if _, hit, err := sys.PrepareCached(src); err != nil || hit {
		t.Fatalf("populate: hit=%v err=%v", hit, err)
	}
	p1, hit1, err := sys.PrepareCached(src)
	if err != nil || !hit1 {
		t.Fatalf("clone 1: hit=%v err=%v", hit1, err)
	}
	p2, hit2, err := sys.PrepareCached(src)
	if err != nil || !hit2 {
		t.Fatalf("clone 2: hit=%v err=%v", hit2, err)
	}
	if p1.FlightKey() != p2.FlightKey() {
		t.Error("clones of one template have different flight keys")
	}
	a1, a2 := p1.Access(), p2.Access()
	tmp1, tmp2 := "", ""
	for _, w := range a1.Writes {
		if len(w) > 12 && w[:12] == "restore/tmp/" {
			tmp1 = w
		}
	}
	for _, w := range a2.Writes {
		if len(w) > 12 && w[:12] == "restore/tmp/" {
			tmp2 = w
		}
	}
	if tmp1 == "" || tmp2 == "" {
		t.Fatalf("clones declare no tmp namespace writes: %v / %v", a1.Writes, a2.Writes)
	}
	if tmp1 == tmp2 {
		t.Errorf("clones share tmp namespace %q — concurrent executions would collide", tmp1)
	}
	// Both clones must execute successfully and agree.
	r1, err := sys.ExecutePrepared(p1)
	if err != nil {
		t.Fatalf("execute clone 1: %v", err)
	}
	r2, err := sys.ExecutePrepared(p2)
	if err != nil {
		t.Fatalf("execute clone 2: %v", err)
	}
	rows1, err := sys.ReadOutputTSV(r1, "out/multi")
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := sys.ReadOutputTSV(r2, "out/multi")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rows1) != fmt.Sprint(rows2) {
		t.Errorf("clone executions disagree:\n%v\n%v", rows1, rows2)
	}
}

// TestRemapTmpPath pins the namespace-remap edge cases: exact base, nested
// paths, and lookalike prefixes that must pass through untouched.
func TestRemapTmpPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"restore/tmp/q1", "restore/tmp/q9"},
		{"restore/tmp/q1/j0", "restore/tmp/q9/j0"},
		{"restore/tmp/q1/a/b", "restore/tmp/q9/a/b"},
		{"restore/tmp/q12/j0", "restore/tmp/q12/j0"}, // lookalike prefix: not q1
		{"out/x", "out/x"},
		{"restore/sub/s1", "restore/sub/s1"},
	}
	for _, tc := range cases {
		if got := remapTmpPath(tc.in, "restore/tmp/q1", "restore/tmp/q9"); got != tc.want {
			t.Errorf("remapTmpPath(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
