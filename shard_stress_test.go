package restore

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardBarrierStress storms a sharded system from three sides at once:
// per-namespace query workers (single- and multi-shard leases), one GC
// scanner per shard (shard-local leases draining the per-shard dirty
// feeds), and a checkpoint loop taking the universal cross-shard barrier
// (SaveState). The barrier acquires every shard's lease table in canonical
// ascending order, so the test's job is to prove the ordering invariant
// under contention: no deadlock (the test finishes), no lost entries (every
// surviving repository entry's stored output still exists and still serves
// a reuse), and a quiesced lease table at the end.
func TestShardBarrierStress(t *testing.T) {
	const (
		nss      = 4
		rounds   = 12
		gcTicks  = 20
		saves    = 10
		shards   = 4
		querySet = 6
	)
	sys := New(WithPolicy(Policy{KeepAll: true, CheckInputVersions: true, EvictionWindow: 15}), WithShards(shards))
	seedShardNamespaces(t, sys, 99, nss)

	// A small rotating query set per namespace: repeats force reuse hits,
	// rotation forces registrations and (with the window) evictions, and a
	// cross-namespace join every few rounds forces multi-shard leases.
	queryFor := func(ns, round int) string {
		idx := round % querySet
		other := (ns + 1 + round%(nss-1)) % nss
		rng := rand.New(rand.NewSource(int64(ns*1000 + idx)))
		src, _ := randomShardQuery(rng, ns, other, ns*querySet+idx)
		return src
	}

	var failures atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})

	for ns := 0; ns < nss; ns++ {
		ns := ns
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if _, err := sys.Execute(queryFor(ns, round)); err != nil {
					t.Errorf("ns%d round %d: %v", ns, round, err)
					failures.Add(1)
					return
				}
			}
		}()
	}
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < gcTicks; n++ {
				select {
				case <-done:
					return
				default:
				}
				sys.CollectShardGarbage(i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < saves; n++ {
			select {
			case <-done:
				return
			default:
			}
			if err := sys.SaveState(io.Discard, io.Discard); err != nil {
				t.Errorf("checkpoint %d: %v", n, err)
				failures.Add(1)
				return
			}
		}
	}()

	wg.Wait()
	close(done)
	if failures.Load() > 0 {
		t.Fatal("storm aborted early; invariants below would be vacuous")
	}

	// No lost entries: everything the repository still indexes must be
	// readable, and every dangling reference is a bug in a scanner or the
	// barrier (an eviction that removed the file but not the entry, or a
	// checkpoint that raced a scanner's removal).
	if sys.leases.inflightCount() != 0 {
		t.Fatalf("lease tables not drained after the storm: %d inflight", sys.leases.inflightCount())
	}
	entries := sys.Repository().All()
	if len(entries) == 0 {
		t.Fatal("storm left an empty repository; reuse premise broken")
	}
	for _, e := range entries {
		if !sys.fs.Exists(e.OutputPath) {
			t.Errorf("entry %s survived but its stored output %s is gone", e.ID, e.OutputPath)
		}
	}
	// And the survivors still serve: re-running each namespace's last query
	// on the warmed system must succeed (typically as a whole-job reuse).
	before := sys.Stats().QueriesReused
	for ns := 0; ns < nss; ns++ {
		if _, err := sys.Execute(queryFor(ns, rounds-1)); err != nil {
			t.Fatalf("post-storm reuse probe ns%d: %v", ns, err)
		}
	}
	if after := sys.Stats().QueriesReused; after == before {
		t.Log("post-storm probes hit no reuse (legal after heavy eviction, but worth a look)")
	}
	// A final full pass must find a consistent system (no deferred work
	// stuck behind a lost lease).
	rep := sys.CollectGarbage()
	for _, p := range rep.Evicted {
		_ = p // decisions are policy's business; the pass completing is the invariant
	}
}

// TestUniversalBarrierOrdering pins the deadlock-freedom argument directly:
// many goroutines acquiring overlapping multi-shard leases (including the
// universal set) in parallel must all complete. If any acquisition path
// took shard tables out of ascending order, this test would wedge two
// barriers against each other.
func TestUniversalBarrierOrdering(t *testing.T) {
	const shards = 4
	sys := New(WithShards(shards))
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 30; n++ {
				var a AccessSet
				switch (i + n) % 3 {
				case 0:
					a = UniversalAccess()
				case 1:
					// Two deep paths on (usually) different shards.
					a = AccessSet{Writes: []string{fmt.Sprintf("ns%d/x", n%4), fmt.Sprintf("ns%d/y", (n+1)%4)}}
				case 2:
					a = AccessSet{Reads: []string{fmt.Sprintf("ns%d/x", n%4)}, Writes: []string{fmt.Sprintf("ns%d/z", (n+2)%4)}}
				}
				l := sys.leases.acquire(a)
				sys.leases.release(l)
			}
		}()
	}
	wg.Wait()
	if got := sys.leases.inflightCount(); got != 0 {
		t.Fatalf("inflight %d after all leases released", got)
	}
}
