// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B benchmark per experiment, on the tiny configuration so the
// whole suite runs in seconds), plus micro-benchmarks for the components on
// ReStore's critical path: plan matching, canonicalization, and the
// end-to-end execute pipeline.
//
// For full-size experiment output, use: go run ./cmd/restore-bench
package restore_test

import (
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.TinyConfig()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig9WholeJobReuse(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10SubJobReuse(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11Overhead(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkFig12Speedup(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkFig13Heuristics(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14InjectionCost(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkTable1StoredBytes(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkFig15ReuseTypes(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkTable2SyntheticData(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkFig16ProjectSweep(b *testing.B)    { runExperiment(b, "fig16") }
func BenchmarkFig17FilterSweep(b *testing.B)     { runExperiment(b, "fig17") }
func BenchmarkAblationRepoOrdering(b *testing.B) { runExperiment(b, "ablation-order") }
func BenchmarkAblationEviction(b *testing.B)     { runExperiment(b, "ablation-evict") }

// seededSystem builds a system with a small log table for micro-benchmarks.
func seededSystem(b *testing.B, opts ...restore.Option) *restore.System {
	b.Helper()
	sys := restore.New(opts...)
	lines := make([]string, 2000)
	for i := range lines {
		lines[i] = fmt.Sprintf("user%03d\t%d\t%d.5\t%s", i%100, i%86400, i%50, strings.Repeat("p", 60))
	}
	if err := sys.LoadTSV("bench/views", "user, ts:long, rev:double, pad", lines, 4); err != nil {
		b.Fatal(err)
	}
	return sys
}

const benchQuery = `
A = load 'bench/views' as (user, ts:long, rev:double, pad);
B = foreach A generate user, rev;
C = group B by user;
D = foreach C generate group, SUM(B.rev);
store D into 'out/%d';
`

// BenchmarkExecuteColdNoReuse measures the full pipeline (parse, build,
// compile, run) without ReStore.
func BenchmarkExecuteColdNoReuse(b *testing.B) {
	sys := seededSystem(b,
		restore.WithReuse(false),
		restore.WithHeuristic(restore.HeuristicOff),
		restore.WithRegistration(false))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(fmt.Sprintf(benchQuery, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteWarmReuse measures the pipeline when every job is
// answered from the repository (the steady state ReStore optimizes for).
func BenchmarkExecuteWarmReuse(b *testing.B) {
	sys := seededSystem(b)
	if _, err := sys.Execute(fmt.Sprintf(benchQuery, 1<<30)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(fmt.Sprintf(benchQuery, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatcherScaling measures repository scan cost as the repository
// grows: the §3 sequential scan is linear in entries, which is the paper's
// stated reason for bounding repository size with the §5 rules.
func BenchmarkMatcherScaling(b *testing.B) {
	for _, entries := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			sys := seededSystem(b)
			// Populate the repository with that many distinct filters.
			for i := 0; i < entries; i++ {
				q := fmt.Sprintf(`
A = load 'bench/views' as (user, ts:long, rev:double, pad);
B = filter A by ts > %d;
C = foreach B generate user, rev;
D = group C by user;
E = foreach D generate group, SUM(C.rev);
store E into 'out/pop%d';
`, i*7, i)
				if _, err := sys.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
			probe := fmt.Sprintf(benchQuery, 1<<20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Execute(strings.Replace(probe, "out/1048576", fmt.Sprintf("out/m%d", i), 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
