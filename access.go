package restore

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shardkey"
)

// This file implements the concurrency substrate that lets path-disjoint
// workflows execute in parallel: declared read/write path sets (AccessSet)
// and a FIFO-fair lease table that admits an execution only when its sets
// are disjoint from every in-flight one.
//
// Every declared path covers its whole subtree: a write lease on
// "restore/tmp/q7" conflicts with any read or write under
// "restore/tmp/q7/...". Reads share; writes exclude.
//
// What the lease table guarantees:
//
//   - Mutual exclusion by declaration: while a lease is held, no other
//     lease whose set conflicts with it (write/write, write/read,
//     read/write, or either universal) is in flight. Operations touching
//     only disjoint paths are never serialized against each other.
//   - FIFO fairness without starvation: a waiter is admitted once its set
//     is disjoint from every in-flight lease AND every earlier waiter, so
//     later disjoint arrivals may pass a blocked waiter but a conflicting
//     one never can — a universal waiter (checkpoint/compaction) cannot be
//     starved by a stream of small leases behind it.
//   - A universal lease is a full drain barrier: when granted, nothing
//     else is in flight, and nothing is admitted until it is released.
//     System.Quiesce/SaveState/AdoptRepository rely on this to observe (or
//     swap) globally consistent state.
//   - Mid-run read extension (extendReads) never introduces a conflict:
//     it is refused if any other in-flight lease writes an overlapping
//     path, in which case the caller must skip the optimisation (the
//     rewriter then simply re-executes instead of reusing).

// AccessSet declares the DFS paths an operation may read and write. Paths
// are prefix-scoped: a set containing "out/a" also covers "out/a/part0".
// The zero value conflicts with nothing and is never blocked.
type AccessSet struct {
	// Reads are paths loaded as inputs. Concurrent readers of the same
	// path are allowed.
	Reads []string
	// Writes are paths (and namespaces) the operation may create, rewrite,
	// or delete. A write conflicts with any concurrent read or write of an
	// overlapping path.
	Writes []string
	// Universal marks an operation that logically touches every path —
	// checkpoints, repository swaps, scale changes. It conflicts with
	// everything, so acquiring it drains all in-flight work and blocks new
	// admissions until released.
	Universal bool
}

// UniversalAccess is the write-set-universal AccessSet used by checkpoints
// and other whole-system operations.
func UniversalAccess() AccessSet { return AccessSet{Universal: true} }

// PathsConflict reports whether two DFS paths overlap under prefix scoping:
// they are equal, or one is a parent directory of the other at a '/'
// boundary ("out/a" vs "out/a/x" conflict; "out/a" vs "out/ab" do not).
func PathsConflict(a, b string) bool {
	if a == b {
		return true
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	return strings.HasPrefix(b, a) && b[len(a)] == '/'
}

// overlaps reports whether any path in as overlaps any path in bs.
func overlaps(as, bs []string) bool {
	for _, a := range as {
		for _, b := range bs {
			if PathsConflict(a, b) {
				return true
			}
		}
	}
	return false
}

// ConflictsWith reports whether two operations may not run concurrently:
// either is universal, or their sets overlap read/write, write/read, or
// write/write. Read/read overlap is not a conflict.
func (a AccessSet) ConflictsWith(b AccessSet) bool {
	if a.Universal || b.Universal {
		return true
	}
	return overlaps(a.Writes, b.Writes) ||
		overlaps(a.Writes, b.Reads) ||
		overlaps(a.Reads, b.Writes)
}

// normalize sorts and deduplicates the path lists (stable declaration order
// helps tests and debugging; conflict checks do not depend on it).
func (a *AccessSet) normalize() {
	a.Reads = dedupSorted(a.Reads)
	a.Writes = dedupSorted(a.Writes)
}

func dedupSorted(ps []string) []string {
	if len(ps) < 2 {
		return ps
	}
	sort.Strings(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// execLease is one granted admission into the execution phase.
type execLease struct {
	access AccessSet
	ready  chan struct{}
}

// leaseTable admits operations in FIFO order: a waiter is granted once its
// AccessSet is disjoint from every in-flight lease and from every waiter
// ahead of it. The ahead-of-it check keeps admission fair — a universal
// waiter (checkpoint) cannot be starved by a stream of later disjoint
// arrivals, because those queue behind it.
type leaseTable struct {
	mu       sync.Mutex
	waiting  []*execLease
	inflight map[*execLease]struct{}
	// obs records admission waits and queue/in-flight gauges; nil (or
	// obs.Disabled) turns every record into a single-branch no-op. Set via
	// System.SetObserver before traffic; never mutated mid-stream.
	obs *obs.Registry
}

// acquire blocks until the access set can be admitted and returns the
// lease. The caller must release it. The set is not copied or mutated —
// callers sharing one set across goroutines (Prepared.Access) rely on
// acquire treating it as read-only.
func (lt *leaseTable) acquire(a AccessSet) *execLease {
	start := time.Now()
	l := &execLease{access: a, ready: make(chan struct{})}
	lt.mu.Lock()
	if lt.inflight == nil {
		lt.inflight = make(map[*execLease]struct{})
	}
	lt.waiting = append(lt.waiting, l)
	lt.promote()
	lt.mu.Unlock()
	lt.obs.LeaseQueued(1)
	if a.Universal {
		// Universal barriers (checkpoints, repository swaps) stall until
		// the whole system drains; surfacing how many are stalled — and for
		// how long, via the lease-wait histogram — is the signal that tells
		// an operator compaction cadence is fighting live traffic.
		lt.obs.UniversalQueued(1)
	}
	<-l.ready
	lt.obs.LeaseQueued(-1)
	if a.Universal {
		lt.obs.UniversalQueued(-1)
	}
	lt.obs.LeaseAdmitted(1)
	lt.obs.ObserveLeaseWait(time.Since(start))
	return l
}

// release returns a lease and admits any now-eligible waiters.
func (lt *leaseTable) release(l *execLease) {
	lt.mu.Lock()
	delete(lt.inflight, l)
	lt.promote()
	lt.mu.Unlock()
	lt.obs.LeaseAdmitted(-1)
}

// promote grants eligible waiters in FIFO order. Called with mu held.
func (lt *leaseTable) promote() {
	for i := 0; i < len(lt.waiting); {
		w := lt.waiting[i]
		if lt.blocked(w, i) {
			i++
			continue
		}
		lt.waiting = append(lt.waiting[:i], lt.waiting[i+1:]...)
		lt.inflight[w] = struct{}{}
		close(w.ready)
	}
}

// blocked reports whether waiter w (at queue position pos) conflicts with
// an in-flight lease or an earlier waiter.
func (lt *leaseTable) blocked(w *execLease, pos int) bool {
	for f := range lt.inflight {
		if w.access.ConflictsWith(f.access) {
			return true
		}
	}
	for _, ahead := range lt.waiting[:pos] {
		if w.access.ConflictsWith(ahead.access) {
			return true
		}
	}
	return false
}

// extendReads adds path to a held lease's read set — used when an
// execution discovers mid-run that a rewrite wants to read a user-named
// stored output its declared sets could not predict. The extension is
// refused (false) when any other in-flight lease writes a conflicting
// path: the caller must then skip that reuse instead of racing the writer.
// On success, later admissions (including already-queued waiters) see the
// extended set and serialize against it.
func (lt *leaseTable) extendReads(l *execLease, path string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	probe := AccessSet{Reads: []string{path}}
	for f := range lt.inflight {
		if f != l && probe.ConflictsWith(f.access) {
			return false
		}
	}
	// Copy-on-write: the original Reads slice may be shared with the
	// Prepared value other goroutines are reading.
	l.access.Reads = append(append([]string(nil), l.access.Reads...), path)
	return true
}

// insertRead installs a fresh read-only single-path lease directly into the
// in-flight set, bypassing the queue — the sharded extendReads uses it when
// a held lease extends into a table it was not registered in. Like
// extendReads, it checks only in-flight leases (waiters are passed, exactly
// as a same-table extension would pass them) and refuses when any in-flight
// writer conflicts.
func (lt *leaseTable) insertRead(path string) (*execLease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	probe := AccessSet{Reads: []string{path}}
	for f := range lt.inflight {
		if probe.ConflictsWith(f.access) {
			return nil, false
		}
	}
	if lt.inflight == nil {
		lt.inflight = make(map[*execLease]struct{})
	}
	l := &execLease{access: probe, ready: make(chan struct{})}
	close(l.ready)
	lt.inflight[l] = struct{}{}
	return l, true
}

// inflightCount reports how many leases are currently held (tests and
// metrics).
func (lt *leaseTable) inflightCount() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.inflight)
}

// heldLease is one logical admission granted by shardedLeases: the declared
// set plus the per-table leases that realize it. parts[i] is held in table
// shards[i]; shards is ascending for the parts taken at acquire time
// (extensions may append out of order — release order is irrelevant, only
// blocking acquisition must be ordered).
type heldLease struct {
	access AccessSet
	shards []int
	parts  []*execLease
}

// shardedLeases splits the lease table by shard key: an access set
// registers (its full declared set) in exactly the tables shardkey.Shards
// derives from its paths, so disjoint queries routed to different shards
// are admitted without ever touching the same mutex. Universal sets — and
// sets containing a shallow path, whose prefix scope spans shard roots —
// become the cross-shard barrier: they acquire every table, always in
// ascending index order (as does any multi-table set), so two barriers or a
// barrier and a multi-shard query can never deadlock.
//
// Conflict detection stays exact: shardkey guarantees any two conflicting
// paths either share a deep root (same table sees both sets) or one side is
// shallow (its barrier visits every table). Within a shared table the usual
// path-overlap check applies, so two sets that merely share a table but not
// paths still run concurrently. All leaseTable guarantees (FIFO fairness,
// drain-barrier universals, non-racing extendReads) are preserved per
// table; a single-table shardedLeases is behaviorally identical to the bare
// leaseTable and serves as the differential oracle.
type shardedLeases struct {
	tables []leaseTable
	// obs records admission waits and queue/in-flight gauges once per
	// logical acquire (the per-table obs stay nil, so part-level accounting
	// no-ops). Set via System.SetObserver before traffic.
	obs *obs.Registry
}

// newShardedLeases returns a lease domain with n independently locked
// tables (n < 1 is clamped to 1).
func newShardedLeases(n int) *shardedLeases {
	if n < 1 {
		n = 1
	}
	return &shardedLeases{tables: make([]leaseTable, n)}
}

// leasePaths collects the declared paths of a set into a fresh slice (the
// caller's slices are shared read-only and must not be appended to).
func leasePaths(a AccessSet) []string {
	out := make([]string, 0, len(a.Reads)+len(a.Writes))
	out = append(out, a.Reads...)
	return append(out, a.Writes...)
}

// acquire blocks until the access set is admitted in every table its paths
// route to and returns the logical lease. Tables are acquired in ascending
// index order; the caller must release the result.
func (sl *shardedLeases) acquire(a AccessSet) *heldLease {
	start := time.Now()
	shards, _ := shardkey.Shards(leasePaths(a), a.Universal, len(sl.tables))
	sl.obs.LeaseQueued(1)
	if a.Universal {
		// Universal barriers (checkpoints, repository swaps) stall until the
		// whole system drains; surfacing how many are stalled — and for how
		// long, via the lease-wait histogram — is the signal that tells an
		// operator compaction cadence is fighting live traffic.
		sl.obs.UniversalQueued(1)
	}
	h := &heldLease{access: a, shards: shards, parts: make([]*execLease, 0, len(shards))}
	for _, si := range shards {
		h.parts = append(h.parts, sl.tables[si].acquire(a))
	}
	sl.obs.LeaseQueued(-1)
	if a.Universal {
		sl.obs.UniversalQueued(-1)
	}
	sl.obs.LeaseAdmitted(1)
	sl.obs.ObserveLeaseWait(time.Since(start))
	return h
}

// release returns every table's part (reverse acquisition order) and admits
// now-eligible waiters.
func (sl *shardedLeases) release(h *heldLease) {
	for i := len(h.parts) - 1; i >= 0; i-- {
		sl.tables[h.shards[i]].release(h.parts[i])
	}
	sl.obs.LeaseAdmitted(-1)
}

// extendReads adds path to the held lease's coverage mid-run (see
// leaseTable.extendReads for the contract). The path's home table is where
// any conflicting writer must be registered — deep conflicting paths share
// its root's table, shallow writers barrier into every table — so the
// extension registers there: extending the existing part when the lease
// holds one, or inserting a fresh read-only lease otherwise. A shallow path
// (multi-root prefix scope) cannot be covered by one table, so it is
// refused and the caller skips that reuse — except at one table, where
// routing is trivially total.
func (sl *shardedLeases) extendReads(h *heldLease, path string) bool {
	n := len(sl.tables)
	if _, deep := shardkey.Root(path); !deep && n > 1 {
		return false
	}
	t := shardkey.Index(path, n)
	for i, si := range h.shards {
		if si == t {
			return sl.tables[t].extendReads(h.parts[i], path)
		}
	}
	part, ok := sl.tables[t].insertRead(path)
	if !ok {
		return false
	}
	h.shards = append(h.shards, t)
	h.parts = append(h.parts, part)
	return true
}

// inflightCount reports how many per-table leases are currently held,
// summed over tables (tests and metrics; a k-table logical lease counts k).
func (sl *shardedLeases) inflightCount() int {
	n := 0
	for i := range sl.tables {
		n += sl.tables[i].inflightCount()
	}
	return n
}
