package restore

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("user:chararray, ts:long, rev:double, ok:bool, raw:bytearray, untyped")
	if err != nil {
		t.Fatal(err)
	}
	want := []types.Kind{types.KindString, types.KindInt, types.KindFloat, types.KindBool, types.KindNull, types.KindNull}
	if s.Len() != len(want) {
		t.Fatalf("len = %d", s.Len())
	}
	for i, k := range want {
		if s.Fields[i].Kind != k {
			t.Errorf("field %d kind = %v, want %v", i, s.Fields[i].Kind, k)
		}
	}
	if s.Fields[0].Name != "user" || s.Fields[5].Name != "untyped" {
		t.Errorf("names = %v", s.Names())
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, decl := range []string{"", "a:frobnicate", "a,,b"} {
		if _, err := ParseSchema(decl); err == nil {
			t.Errorf("ParseSchema(%q) accepted", decl)
		}
	}
}

func TestLoadTSVAndStat(t *testing.T) {
	s := New()
	lines := []string{"alice\t3\t1.5", "bob\t7\t2.5", "carol\tx\t9"}
	if err := s.LoadTSV("t", "name, n:int, f:double", lines, 2); err != nil {
		t.Fatal(err)
	}
	st, err := s.StatPath("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.Partitions != 2 || st.Bytes == 0 {
		t.Errorf("stat = %+v", st)
	}
	rows, err := s.FS().ReadAll("t")
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]types.Tuple)
	for _, r := range rows {
		byName[r[0].Str()] = r
	}
	if byName["alice"][1].Int() != 3 || byName["bob"][2].Float() != 2.5 {
		t.Errorf("typed parse wrong: %v", rows)
	}
	if !byName["carol"][1].IsNull() {
		t.Error("malformed int should parse as null")
	}
	if _, err := s.StatPath("missing"); err == nil {
		t.Error("StatPath on missing path succeeded")
	}
}

func TestSetDataScale(t *testing.T) {
	s := New()
	if err := s.LoadTSV("d", "a", []string{"xxxxxxxxxx"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDataScale("d", 1<<30); err != nil {
		t.Fatal(err)
	}
	if s.Cluster().ScaleFactor <= 1 {
		t.Errorf("scale = %v", s.Cluster().ScaleFactor)
	}
	if err := s.SetDataScale("missing", 1); err == nil {
		t.Error("scale on missing path succeeded")
	}
}

func TestLoadTSVThenQuery(t *testing.T) {
	s := New()
	if err := s.LoadTSV("sales", "sku, qty:int",
		[]string{"a\t2", "b\t3", "a\t5"}, 1); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(`
S = load 'sales' as (sku, qty:int);
G = group S by sku;
R = foreach G generate group, SUM(S.qty);
store R into 'out/r';`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.ReadOutputTSV(res, "out/r")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rows, "|") != "a\t7|b\t3" {
		t.Errorf("rows = %v", rows)
	}
}
