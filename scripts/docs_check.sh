#!/bin/sh
# docs_check.sh — golint-style doc-comment gate for the documented packages.
#
# Fails if any exported top-level declaration (func, method, type, and
# single-line const/var) in the packages below lacks a doc comment on the
# line directly above it. Grouped const/var blocks are exempt (their
# members are documented at the block or field level by convention).
#
# Run via `make docs-check` (part of `make check`).
set -eu

cd "$(dirname "$0")/.."

FILES=$(find internal/server internal/dfs internal/core internal/obs internal/shardkey internal/persist internal/mapred internal/exec internal/fleet -name '*.go' ! -name '*_test.go'; echo access.go)

status=0
for f in $FILES; do
	if ! awk '
		{ lines[NR] = $0 }
		END {
			bad = 0
			for (i = 1; i <= NR; i++) {
				line = lines[i]
				flag = 0
				if (line ~ /^func [A-Z]/ \
					|| line ~ /^type [A-Z]/ \
					|| line ~ /^const [A-Z]/ \
					|| line ~ /^var [A-Z]/) {
					flag = 1
				} else if (line ~ /^func \([^)]*\) [A-Z]/) {
					# Methods: only exported receiver types need docs
					# (unexported adapters satisfying interfaces are exempt,
					# matching golint).
					recv = line
					sub(/^func \(/, "", recv)
					sub(/\).*/, "", recv)
					n = split(recv, parts, " ")
					typ = parts[n]
					sub(/^\*/, "", typ)
					if (typ ~ /^[A-Z]/) flag = 1
				}
				if (flag) {
					prev = (i > 1) ? lines[i-1] : ""
					if (prev !~ /^\/\//) {
						printf "%s:%d: exported declaration lacks a doc comment: %s\n", FILENAME, i, line
						bad = 1
					}
				}
			}
			exit bad
		}
	' "$f"; then
		status=1
	fi
done

if [ "$status" -ne 0 ]; then
	echo "docs-check: add doc comments to the declarations above (see docs/ARCHITECTURE.md for the package contracts they should state)" >&2
fi
exit $status
