// Weblogs: the workload the paper's introduction motivates — an internet
// company's usage-log warehouse where many analysts' queries repeat the
// same load-filter-project prefix over the same day of logs. Each analyst
// query here (1) loads the access log, (2) filters out bot traffic, and
// (3) computes a different aggregate. ReStore materializes the shared
// prefix once; every later query starts from the filtered slice.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro"
)

// The shared prefix: load the raw log and drop bot traffic.
const prefix = `
logs = load 'warehouse/access_log' as (ip, url, status:int, bytes:long, agent, referrer);
human = filter logs by not (agent == 'bot');
slim = foreach human generate url, status, bytes;
`

// Five analysts, five different questions over the same slice.
var analystQueries = map[string]string{
	"errors-by-url": prefix + `
errs = filter slim by status >= 500;
g = group errs by url;
rep = foreach g generate group, COUNT(errs);
store rep into 'reports/errors_by_url';`,

	"traffic-by-url": prefix + `
g = group slim by url;
rep = foreach g generate group, SUM(slim.bytes);
store rep into 'reports/traffic_by_url';`,

	"status-histogram": prefix + `
g = group slim by status;
rep = foreach g generate group, COUNT(slim);
store rep into 'reports/status_histogram';`,

	"total-traffic": prefix + `
g = group slim all;
rep = foreach g generate COUNT(slim), SUM(slim.bytes);
store rep into 'reports/total_traffic';`,

	"heaviest-pages": prefix + `
g = group slim by url;
sized = foreach g generate group, MAX(slim.bytes) as peak;
ranked = order sized by peak desc;
top = limit ranked 10;
store top into 'reports/heaviest_pages';`,
}

func main() {
	sys := restore.New() // Aggressive heuristic stores the shared prefix

	seedLogs(sys, 20000)
	must(sys.SetDataScale("warehouse/access_log", 80<<30)) // a day of logs

	order := []string{"errors-by-url", "traffic-by-url", "status-histogram", "total-traffic", "heaviest-pages"}
	var total, first time.Duration
	for i, name := range order {
		res, err := sys.Execute(analystQueries[name])
		must(err)
		total += res.SimulatedTime
		if i == 0 {
			first = res.SimulatedTime
		}
		fmt.Printf("%-18s jobs=%d simulated=%-8v reused=%d stored=%d\n",
			name, len(res.Jobs), res.SimulatedTime.Round(time.Second),
			len(res.Rewrites), res.Registered)
	}
	fmt.Printf("\nrepository: %d entries after the morning's queries\n", sys.Repository().Len())
	fmt.Printf("whole stream: %v; without ReStore every query would pay ~%v for the scan alone\n",
		total.Round(time.Second), first.Round(time.Second))

	// The last report, for the record.
	res, err := sys.Execute(analystQueries["heaviest-pages"])
	must(err)
	rows, err := sys.ReadOutputTSV(res, "reports/heaviest_pages")
	must(err)
	fmt.Printf("\nheaviest pages (%d rows):\n", len(rows))
	for _, r := range rows {
		fmt.Println(" ", r)
	}
}

func seedLogs(sys *restore.System, n int) {
	rng := rand.New(rand.NewSource(99))
	agents := []string{"firefox", "chrome", "safari", "bot"}
	pad := strings.Repeat("q", 80) // realistic referrer/agent junk width
	lines := make([]string, n)
	for i := range lines {
		status := 200
		switch {
		case rng.Intn(20) == 0:
			status = 500 + rng.Intn(4)
		case rng.Intn(10) == 0:
			status = 404
		}
		lines[i] = fmt.Sprintf("10.0.%d.%d\t/page/%02d\t%d\t%d\t%s\t%s",
			rng.Intn(256), rng.Intn(256), rng.Intn(40), status,
			rng.Intn(1<<16), agents[rng.Intn(len(agents))], pad)
	}
	must(sys.LoadTSV("warehouse/access_log",
		"ip, url, status:int, bytes:long, agent, referrer", lines, 4))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
