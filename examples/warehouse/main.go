// Warehouse: repository management over time (§5 of the paper). A retailer
// runs the same nightly reports for a week. Each night the sales fact table
// is refreshed, so Rule 4 must evict yesterday's stored results instead of
// serving stale data; a Rule-3 window bounds how long unused results stay.
// Within one night, the second and third reports reuse the first's work.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro"
)

const salesPrefix = `
sales = load 'warehouse/sales' as (sku, store_id, qty:int, price:double, day:int, note);
net = filter sales by qty > 0;
line = foreach net generate sku, store_id, qty * price as amount;
`

var nightlyReports = []struct{ name, src string }{
	{"revenue-by-sku", salesPrefix + `
g = group line by sku;
rep = foreach g generate group, SUM(line.amount);
store rep into 'reports/revenue_by_sku';`},
	{"revenue-by-store", salesPrefix + `
g = group line by store_id;
rep = foreach g generate group, SUM(line.amount);
store rep into 'reports/revenue_by_store';`},
	{"units-by-store", salesPrefix + `
g = group line by store_id;
rep = foreach g generate group, COUNT(line);
store rep into 'reports/units_by_store';`},
}

func main() {
	sys := restore.New(
		// Keep-all plus Rule 3 (unused entries expire after 4 workflows)
		// and Rule 4 (input refresh invalidates derived results).
		restore.WithPolicy(restore.Policy{
			KeepAll:            true,
			EvictionWindow:     4,
			CheckInputVersions: true,
		}),
	)

	for day := 1; day <= 3; day++ {
		// The nightly ETL refreshes the fact table: every stored result
		// derived from the old data must be evicted, not reused.
		refreshSales(sys, day, 15000)
		must(sys.SetDataScale("warehouse/sales", 60<<30))
		fmt.Printf("== night %d (fact table refreshed) ==\n", day)

		var night time.Duration
		for _, rep := range nightlyReports {
			res, err := sys.Execute(rep.src)
			must(err)
			night += res.SimulatedTime
			fmt.Printf("  %-17s jobs=%d simulated=%-8v reused=%d evicted=%d repo=%d\n",
				rep.name, len(res.Jobs), res.SimulatedTime.Round(time.Second),
				len(res.Rewrites), len(res.Evicted), sys.Repository().Len())
		}
		fmt.Printf("  night total: %v\n\n", night.Round(time.Second))
	}

	fmt.Printf("repository after the week: %d entries (bounded by Rules 3-4, not ever-growing)\n",
		sys.Repository().Len())
}

// refreshSales rewrites the fact table, bumping its DFS version (Rule 4).
func refreshSales(sys *restore.System, day, rows int) {
	rng := rand.New(rand.NewSource(int64(day)))
	note := strings.Repeat("n", 120)
	lines := make([]string, rows)
	for i := range lines {
		qty := rng.Intn(12) // occasionally 0: returns, filtered out
		lines[i] = fmt.Sprintf("sku%04d\tstore%02d\t%d\t%.2f\t%d\t%s",
			rng.Intn(500), rng.Intn(25), qty, 1+rng.Float64()*99, day, note)
	}
	must(sys.LoadTSV("warehouse/sales",
		"sku, store_id, qty:int, price:double, day:int, note", lines, 4))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
