// Quickstart: the paper's running example (§2). Q1 joins page views with
// users; Q2 runs the same join and then aggregates. With ReStore, executing
// Q1 stores its projections and join output, and Q2 is rewritten to reuse
// them instead of re-scanning the base data — Figures 2-4 of the paper.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
)

const q1 = `
A = load 'page_views' as (user, timestamp:long, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/q1';
`

const q2 = `
A = load 'page_views' as (user, timestamp:long, est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'out/q2';
`

func main() {
	sys := restore.New() // reuse on, Aggressive heuristic — the paper's default

	// Seed a small page_views / users instance.
	rng := rand.New(rand.NewSource(7))
	var views, users []string
	filler := strings.Repeat("x", 150) // page_info/page_links dominate row width
	for i := 0; i < 5000; i++ {
		views = append(views, fmt.Sprintf("user%03d\t%d\t%.2f\t%s\t%s",
			rng.Intn(100), rng.Intn(86400), rng.Float64()*10, filler, filler))
	}
	for i := 0; i < 100; i++ {
		users = append(users, fmt.Sprintf("user%03d\t555-%04d\taddr\tcity", i, i))
	}
	must(sys.LoadTSV("page_views", "user:chararray, timestamp:long, est_revenue:double, page_info, page_links", views, 4))
	must(sys.LoadTSV("users", "name:chararray, phone, address, city", users, 2))
	// Bill simulated time as if page_views were 150 GB (the paper's large
	// instance); execution itself stays laptop-sized.
	must(sys.SetDataScale("page_views", 150<<30))

	fmt.Println("== executing Q1 (cold) ==")
	r1, err := sys.Execute(q1)
	must(err)
	fmt.Printf("jobs=%d simulated=%v stored %d repository entries\n\n",
		len(r1.Jobs), r1.SimulatedTime.Round(1e9), r1.Registered)

	fmt.Println("== executing Q2 (reuses Q1's work) ==")
	r2, err := sys.Execute(q2)
	must(err)
	fmt.Printf("jobs=%d simulated=%v\n", len(r2.Jobs), r2.SimulatedTime.Round(1e9))
	for _, rw := range r2.Rewrites {
		kind := "sub-plan"
		if rw.WholeJob {
			kind = "whole job"
		}
		fmt.Printf("  reused %s (%s)\n", rw.OutputPath, kind)
	}

	rows, err := sys.ReadOutputTSV(r2, "out/q2")
	must(err)
	fmt.Printf("\nQ2 produced %d rows; first 5:\n", len(rows))
	for i := 0; i < 5 && i < len(rows); i++ {
		fmt.Println(" ", rows[i])
	}

	fmt.Println("\n== executing Q2 again (fully answered from the repository) ==")
	r3, err := sys.Execute(q2)
	must(err)
	fmt.Printf("jobs=%d simulated=%v (output served from %s)\n",
		len(r3.Jobs), r3.SimulatedTime.Round(1e9), r3.Outputs["out/q2"])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
