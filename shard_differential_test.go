package restore

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Differential oracle battery for the sharded execution core: a system built
// with WithShards(n) must be observationally identical to the single-domain
// oracle (the default New()) on any workload. Sharding partitions the DFS
// namespace, repository usage state, and lease admission purely for
// concurrency — never for semantics — so the same seeded query stream run in
// the same order must produce byte-identical DFS contents, the same
// repository entries with the same usage counters, the same reuse and
// eviction statistics, and the same per-query rewrite/evict decisions.

// seedShardNamespaces loads identical fact/dim tables into nss disjoint
// top-level namespaces (ns0/..., ns1/..., ...). Distinct top-level segments
// have distinct shard roots, so single-namespace queries land on one shard
// and cross-namespace joins span two.
func seedShardNamespaces(t *testing.T, s *System, seed int64, nss int) {
	t.Helper()
	for ns := 0; ns < nss; ns++ {
		rng := rand.New(rand.NewSource(seed*1009 + int64(ns)))
		var facts, dims []string
		for i := 0; i < 200; i++ {
			facts = append(facts, fmt.Sprintf("k%02d\t%d\t%d\tv%d",
				rng.Intn(20), rng.Intn(100), rng.Intn(10), rng.Intn(5)))
		}
		for i := 0; i < 20; i++ {
			dims = append(dims, fmt.Sprintf("k%02d\tname%d", i, i))
		}
		if err := s.LoadTSV(fmt.Sprintf("ns%d/facts", ns), "k, a:int, b:int, c", facts, 3); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadTSV(fmt.Sprintf("ns%d/dims", ns), "k, label", dims, 2); err != nil {
			t.Fatal(err)
		}
	}
}

// randomShardQuery builds a random pipeline over namespace ns, sometimes
// joining a second namespace (a cross-shard access set on the sharded
// system). idx keys the output path; reuse comes from the small operator
// space repeating sub-plans across queries.
func randomShardQuery(rng *rand.Rand, ns, other, idx int) (src, out string) {
	out = fmt.Sprintf("out/ns%d/q%d", ns, idx)
	var sb strings.Builder
	fmt.Fprintf(&sb, "F = load 'ns%d/facts' as (k, a:int, b:int, c);\n", ns)
	cur := "F"
	steps := 1 + rng.Intn(2)
	for i := 0; i < steps; i++ {
		next := fmt.Sprintf("S%d", i)
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, "%s = filter %s by a > %d;\n", next, cur, 10+10*rng.Intn(6))
		case 1:
			fmt.Fprintf(&sb, "%s = foreach %s generate k, a, b, c;\n", next, cur)
		case 2:
			fmt.Fprintf(&sb, "%s = distinct %s;\n", next, cur)
		}
		cur = next
	}
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&sb, "G = group %s by k;\nR = foreach G generate group, COUNT(%s), SUM(%s.a);\n", cur, cur, cur)
		cur = "R"
	case 1:
		// Cross-namespace join: the access set spans two shard roots, so
		// the sharded system must take a multi-shard lease.
		fmt.Fprintf(&sb, "D = load 'ns%d/dims' as (k, label);\n", other)
		fmt.Fprintf(&sb, "J = join D by k, %s by k;\n", cur)
		cur = "J"
	case 2:
		fmt.Fprintf(&sb, "O = order %s by a desc, k;\n", cur)
		cur = "O"
	}
	fmt.Fprintf(&sb, "store %s into '%s';\n", cur, out)
	return sb.String(), out
}

// exportAll captures a system's full durable state (repository JSON + DFS
// JSON, both deterministic serializations) for byte-level comparison.
func exportAll(t *testing.T, s *System) []byte {
	t.Helper()
	var repo, fsb bytes.Buffer
	if err := s.SaveState(&repo, &fsb); err != nil {
		t.Fatal(err)
	}
	return append(repo.Bytes(), fsb.Bytes()...)
}

// TestShardDifferentialOracle runs seeded mixed conflict/disjoint workloads
// through a sharded system and the single-domain oracle in the same order,
// with an evicting policy, interleaved full-GC passes, and end-of-run
// per-shard scanner passes. Every observable must match: per-query rewrite
// and eviction decisions, output rows, reuse statistics, and finally the
// byte-identical repository+DFS state.
func TestShardDifferentialOracle(t *testing.T) {
	const (
		seeds   = 3
		queries = 24
		nss     = 4
	)
	policy := Policy{KeepAll: true, CheckInputVersions: true, EvictionWindow: 10, OutputRetention: 12}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracle := New(WithPolicy(policy))
			sharded := New(WithPolicy(policy), WithShards(nss))
			if got := sharded.Shards(); got != nss {
				t.Fatalf("Shards() = %d, want %d", got, nss)
			}
			if got := sharded.FS().NumShards(); got != nss {
				t.Fatalf("FS().NumShards() = %d, want %d", got, nss)
			}
			seedShardNamespaces(t, oracle, seed, nss)
			seedShardNamespaces(t, sharded, seed, nss)

			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queries; q++ {
				ns := rng.Intn(nss)
				other := rng.Intn(nss)
				src, out := randomShardQuery(rng, ns, other, q)
				resO, err := oracle.Execute(src)
				if err != nil {
					t.Fatalf("oracle exec q%d:\n%s\n%v", q, src, err)
				}
				resS, err := sharded.Execute(src)
				if err != nil {
					t.Fatalf("sharded exec q%d:\n%s\n%v", q, src, err)
				}
				// Decision-level equality: the same jobs rewritten against
				// the same entries, the same entries evicted, in the same
				// order.
				if !reflect.DeepEqual(resO.Rewrites, resS.Rewrites) {
					t.Fatalf("q%d rewrite decisions diverged:\noracle %v\nsharded %v\nquery:\n%s",
						q, resO.Rewrites, resS.Rewrites, src)
				}
				if !reflect.DeepEqual(resO.Evicted, resS.Evicted) {
					t.Fatalf("q%d eviction decisions diverged:\noracle %v\nsharded %v",
						q, resO.Evicted, resS.Evicted)
				}
				rowsO, err := oracle.ReadOutputTSV(resO, out)
				if err != nil {
					t.Fatal(err)
				}
				rowsS, err := sharded.ReadOutputTSV(resS, out)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Join(rowsO, "\n") != strings.Join(rowsS, "\n") {
					t.Fatalf("q%d rows diverged: oracle %d rows, sharded %d rows", q, len(rowsO), len(rowsS))
				}
				// Interleave full-GC passes (the cross-shard reference path)
				// mid-stream, same points on both systems.
				if q%7 == 6 {
					repO := oracle.CollectGarbage()
					repS := sharded.CollectGarbage()
					if !reflect.DeepEqual(repO.Evicted, repS.Evicted) || !reflect.DeepEqual(repO.Retired, repS.Retired) {
						t.Fatalf("q%d full GC diverged:\noracle %+v\nsharded %+v", q, repO, repS)
					}
				}
			}

			if !reflect.DeepEqual(oracle.Stats(), sharded.Stats()) {
				t.Fatalf("reuse statistics diverged:\noracle  %+v\nsharded %+v", oracle.Stats(), sharded.Stats())
			}
			converged := exportAll(t, sharded)
			if want := exportAll(t, oracle); !bytes.Equal(want, converged) {
				t.Fatalf("final state diverged: oracle %d bytes, sharded %d bytes", len(want), len(converged))
			}

			// The per-shard scanners must be pure concurrency plumbing: with
			// the systems converged (the per-query phases already drained the
			// same dirty feed), draining every shard's feed evicts nothing
			// and leaves the state byte-identical — the scanner only ever
			// moves eviction work earlier, never changes its outcome.
			for i := 0; i < nss; i++ {
				if rep := sharded.CollectShardGarbage(i); len(rep.Evicted) != 0 {
					t.Fatalf("shard %d scanner evicted %v on a converged system", i, rep.Evicted)
				}
			}
			if got := exportAll(t, sharded); !bytes.Equal(converged, got) {
				t.Fatal("per-shard scanner passes mutated a converged system")
			}
		})
	}
}

// TestShardDifferentialConcurrent runs one goroutine per namespace against
// the sharded system — every query disjoint across goroutines, ordered
// within one — and the same per-namespace sequences sequentially on the
// oracle. Row-level results and per-namespace reuse must match: shard
// concurrency may interleave version numbers and entry IDs, but never
// change what any query computes or whether it reuses. Run under -race this
// is the shard-isolation proof.
func TestShardDifferentialConcurrent(t *testing.T) {
	const (
		nss     = 4
		queries = 10
	)
	oracle := New()
	sharded := New(WithShards(nss))
	seedShardNamespaces(t, oracle, 42, nss)
	seedShardNamespaces(t, sharded, 42, nss)

	// Pre-generate every namespace's queries so both systems see the exact
	// same scripts. No cross-namespace joins here: goroutines must stay
	// disjoint for order within a namespace to determine reuse.
	scripts := make([][]string, nss)
	outs := make([][]string, nss)
	for ns := 0; ns < nss; ns++ {
		rng := rand.New(rand.NewSource(int64(1000 + ns)))
		for q := 0; q < queries; q++ {
			src, out := randomShardQuery(rng, ns, ns, ns*queries+q)
			scripts[ns] = append(scripts[ns], src)
			outs[ns] = append(outs[ns], out)
		}
	}

	oracleRows := make([]map[string][]string, nss)
	for ns := 0; ns < nss; ns++ {
		oracleRows[ns] = map[string][]string{}
		for q, src := range scripts[ns] {
			res, err := oracle.Execute(src)
			if err != nil {
				t.Fatalf("oracle ns%d q%d: %v", ns, q, err)
			}
			rows, err := oracle.ReadOutputTSV(res, outs[ns][q])
			if err != nil {
				t.Fatal(err)
			}
			oracleRows[ns][outs[ns][q]] = rows
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, nss)
	shardedRows := make([]map[string][]string, nss)
	for ns := 0; ns < nss; ns++ {
		ns := ns
		shardedRows[ns] = map[string][]string{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q, src := range scripts[ns] {
				res, err := sharded.Execute(src)
				if err != nil {
					errs <- fmt.Errorf("sharded ns%d q%d: %w", ns, q, err)
					return
				}
				rows, err := sharded.ReadOutputTSV(res, outs[ns][q])
				if err != nil {
					errs <- fmt.Errorf("sharded ns%d q%d rows: %w", ns, q, err)
					return
				}
				shardedRows[ns][outs[ns][q]] = rows
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for ns := 0; ns < nss; ns++ {
		for out, want := range oracleRows[ns] {
			if got := shardedRows[ns][out]; strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("ns%d %s: concurrent sharded rows diverged (%d vs %d rows)", ns, out, len(got), len(want))
			}
		}
	}
	// Reuse totals: order within each namespace is preserved and namespaces
	// are disjoint, so hits cannot depend on the cross-namespace schedule.
	so, ss := oracle.Stats(), sharded.Stats()
	if so.Queries != ss.Queries || so.QueriesReused != ss.QueriesReused ||
		so.WholeJobReuses != ss.WholeJobReuses || so.SubJobReuses != ss.SubJobReuses {
		t.Errorf("concurrent sharded reuse diverged:\noracle  queries=%d reused=%d whole=%d sub=%d\nsharded queries=%d reused=%d whole=%d sub=%d",
			so.Queries, so.QueriesReused, so.WholeJobReuses, so.SubJobReuses,
			ss.Queries, ss.QueriesReused, ss.WholeJobReuses, ss.SubJobReuses)
	}
}
