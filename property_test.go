package restore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestPropertyReuseEqualsRecompute fuzzes the whole stack: random pipelines
// of filters, projections, joins, groups, and distincts run as a stream on
// one ReStore system (accumulating and reusing stored results) and
// individually on fresh baseline systems. Every query's output must match
// exactly. This is the system-level invariant behind the paper: rewriting
// against the repository is semantics-preserving.
func TestPropertyReuseEqualsRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	const (
		seeds          = 6
		queriesPerSeed = 8
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			shared := New() // full ReStore
			baselineData := func() *System {
				s := New(WithReuse(false), WithHeuristic(HeuristicOff), WithRegistration(false))
				seedRandomTables(t, s, seed)
				return s
			}
			seedRandomTables(t, shared, seed)

			for q := 0; q < queriesPerSeed; q++ {
				src, out := randomQuery(rng, q)
				resShared, err := shared.Execute(src)
				if err != nil {
					t.Fatalf("shared exec:\n%s\n%v", src, err)
				}
				base := baselineData()
				resBase, err := base.Execute(src)
				if err != nil {
					t.Fatalf("baseline exec:\n%s\n%v", src, err)
				}
				got, err := shared.ReadOutputTSV(resShared, out)
				if err != nil {
					t.Fatal(err)
				}
				want, err := base.ReadOutputTSV(resBase, out)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("query %d diverged under reuse\nquery:\n%s\ngot %d rows, want %d rows",
						q, src, len(got), len(want))
				}
			}
		})
	}
}

// seedRandomTables writes two deterministic tables per seed.
func seedRandomTables(t *testing.T, s *System, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*977 + 13))
	var facts, dims []string
	for i := 0; i < 400; i++ {
		facts = append(facts, fmt.Sprintf("k%02d\t%d\t%d\tv%d",
			rng.Intn(30), rng.Intn(100), rng.Intn(10), rng.Intn(5)))
	}
	for i := 0; i < 30; i++ {
		dims = append(dims, fmt.Sprintf("k%02d\tname%d", i, i))
	}
	if err := s.LoadTSV("fuzz/facts", "k, a:int, b:int, c", facts, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTSV("fuzz/dims", "k, label", dims, 2); err != nil {
		t.Fatal(err)
	}
}

// randomQuery builds a random but always-valid pipeline over the fuzz
// tables.
func randomQuery(rng *rand.Rand, idx int) (src, out string) {
	out = fmt.Sprintf("out/fuzz%d", idx)
	var sb strings.Builder
	sb.WriteString("F = load 'fuzz/facts' as (k, a:int, b:int, c);\n")
	cur := "F"
	steps := 1 + rng.Intn(3)
	for i := 0; i < steps; i++ {
		next := fmt.Sprintf("S%d", i)
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "%s = filter %s by a > %d;\n", next, cur, rng.Intn(80))
		case 1:
			fmt.Fprintf(&sb, "%s = filter %s by b == %d or a < %d;\n", next, cur, rng.Intn(10), rng.Intn(50))
		case 2:
			fmt.Fprintf(&sb, "%s = foreach %s generate k, a, b, c;\n", next, cur)
		case 3:
			fmt.Fprintf(&sb, "%s = distinct %s;\n", next, cur)
		}
		cur = next
	}
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&sb, "G = group %s by k;\nR = foreach G generate group, COUNT(%s), SUM(%s.a);\n", cur, cur, cur)
		cur = "R"
	case 1:
		sb.WriteString("D = load 'fuzz/dims' as (k, label);\n")
		fmt.Fprintf(&sb, "J = join D by k, %s by k;\n", cur)
		cur = "J"
	case 2:
		fmt.Fprintf(&sb, "O = order %s by a desc, k;\n", cur)
		cur = "O"
	}
	fmt.Fprintf(&sb, "store %s into '%s';\n", cur, out)
	return sb.String(), out
}
