package restore

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// ParseSchema parses a schema declaration in the LOAD ... AS syntax, e.g.
// "user:chararray, timestamp:long, est_revenue:double, flags". Types:
// int/long, float/double, chararray/string, boolean/bool; untyped columns
// hold strings.
func ParseSchema(decl string) (types.Schema, error) {
	var fields []types.Field
	for _, part := range strings.Split(decl, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return types.Schema{}, fmt.Errorf("restore: empty column in schema %q", decl)
		}
		name, typeName, hasType := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		f := types.Field{Name: name}
		if hasType {
			switch strings.ToLower(strings.TrimSpace(typeName)) {
			case "int", "long":
				f.Kind = types.KindInt
			case "float", "double":
				f.Kind = types.KindFloat
			case "chararray", "string":
				f.Kind = types.KindString
			case "boolean", "bool":
				f.Kind = types.KindBool
			case "bytearray":
				f.Kind = types.KindNull
			default:
				return types.Schema{}, fmt.Errorf("restore: unknown type %q in schema %q", typeName, decl)
			}
		}
		fields = append(fields, f)
	}
	if len(fields) == 0 {
		return types.Schema{}, fmt.Errorf("restore: empty schema %q", decl)
	}
	return types.Schema{Fields: fields}, nil
}

// LoadTSV creates a dataset in the system's DFS from tab-separated lines,
// typed according to the schema declaration. partitions controls how many
// map tasks scan the dataset. It takes a write lease on the path: a write
// landing mid-query on a path that query reads would otherwise let
// post-execution registration snapshot the *new* input version against
// results computed from the old data, blinding Rule-4 eviction forever.
// Writes to paths no in-flight query touches proceed concurrently.
func (s *System) LoadTSV(path, schemaDecl string, lines []string, partitions int) error {
	schema, err := ParseSchema(schemaDecl)
	if err != nil {
		return err
	}
	tuples := make([]types.Tuple, len(lines))
	for i, line := range lines {
		tuples[i] = types.ParseTSVTyped(line, schema)
	}
	lease := s.leases.acquire(AccessSet{Writes: []string{path}})
	defer s.leases.release(lease)
	return s.fs.WritePartitioned(path, schema, tuples, partitions)
}

// Stat describes a DFS dataset.
type Stat struct {
	Path       string
	Bytes      int64
	Records    int64
	Partitions int
}

// StatPath returns size information for a dataset.
func (s *System) StatPath(path string) (Stat, error) {
	st, err := s.fs.StatFile(path)
	if err != nil {
		return Stat{}, err
	}
	return Stat{Path: st.Path, Bytes: st.Bytes, Records: st.Records, Partitions: st.Partitions}, nil
}

// SetDataScale configures the cluster clock so the dataset at path stands in
// for targetBytes of data (see DESIGN.md: execution is real, only the
// simulated clock extrapolates). Takes a universal lease so the scale
// never changes under a running query's cost model.
func (s *System) SetDataScale(path string, targetBytes int64) error {
	st, err := s.fs.StatFile(path)
	if err != nil {
		return err
	}
	if st.Bytes == 0 {
		return fmt.Errorf("restore: %s is empty; cannot derive scale", path)
	}
	lease := s.leases.acquire(UniversalAccess())
	defer s.leases.release(lease)
	s.cluster.ScaleFactor = float64(targetBytes) / float64(st.Bytes)
	return nil
}
