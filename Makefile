# Developer/CI entry points. `make check` is the gate referenced in README.

GO ?= go

.PHONY: check fmt vet test race race-server race-shard race-engine race-fleet docs-check build bench-match bench-match-smoke bench-gc bench-gc-smoke bench-obs bench-obs-smoke bench-hot bench-hot-smoke bench-shard bench-shard-smoke bench-engine bench-engine-smoke bench-fleet bench-fleet-smoke

check: fmt vet docs-check race race-server race-shard race-engine race-fleet bench-match-smoke bench-gc-smoke bench-obs-smoke bench-hot-smoke bench-shard-smoke bench-engine-smoke bench-fleet-smoke

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency and crash-recovery battery (property/stress/drain tests of
# the conflict-aware scheduler, plus the WAL torn-tail/replay tests) runs
# twice under the detector: interleavings differ per run. internal/core
# rides along for the indexed-vs-naive match equivalence property test.
race-server:
	$(GO) test -race -count=2 ./internal/server/... ./internal/persist/... ./internal/core/...

# The sharded-core battery: the differential oracle (sharded system must be
# observationally identical to the single-domain one), the cross-shard
# barrier stress storm, and the shard-key unit/fuzz corpus. Runs twice under
# the detector: the concurrent phases' interleavings differ per run.
race-shard:
	$(GO) test -race -count=2 -run 'TestShard|TestUniversalBarrier' .
	$(GO) test -race -count=2 ./internal/shardkey/...

# The engine data-plane battery: the differential oracle (the parallel
# sorted-run/k-way-merge plane must be byte-identical to the serial
# single-sort reference), the multi-failure map-phase error collection, and
# the compiled-comparator fuzz corpus. Runs twice under the detector: map
# and reduce pool interleavings differ per run.
race-engine:
	$(GO) test -race -count=2 -run 'TestEngineDataPlane|TestEngineMapPhaseCollectsAllErrors' ./internal/mapred
	$(GO) test -race -count=2 -run 'FuzzShuffleComparator|TestCompareColumnMatchesCompare' ./internal/mapred ./internal/types

# Matcher microbenchmarks: indexed vs naive best-match scan across
# repository sizes, plus the mapping-map allocation profile.
bench-match:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkFindBestMatch|BenchmarkMatchMappingAllocs' -benchmem

# One-iteration smoke of the same benchmarks so the indexed match path is
# exercised (and kept compiling) by every `make check` run.
bench-match-smoke:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkFindBestMatch|BenchmarkMatchMappingAllocs' -benchtime 1x

# Eviction microbenchmarks: one input mutation's Rule-4 invalidation cost
# through the input-path index vs the naive full sweep, across repository
# sizes.
bench-gc:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkEvict' -benchmem

# One-iteration smoke of the eviction benchmarks for every `make check`.
bench-gc-smoke:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkEvict' -benchtime 1x

# Telemetry microbenchmarks: histogram/trace/rate-window record costs, plus
# the full serving path instrumented vs obs.Disabled. The representative
# (cluster-latency) comparison is the server-obs experiment in restore-bench.
bench-obs:
	$(GO) test ./internal/obs ./internal/server -run '^$$' -bench 'BenchmarkHistogramObserve|BenchmarkRegistry|BenchmarkTracePerQuery|BenchmarkRateWindowMark|BenchmarkServerSubmit' -benchmem

# One-iteration smoke of the telemetry benchmarks for every `make check`.
bench-obs-smoke:
	$(GO) test ./internal/obs ./internal/server -run '^$$' -bench 'BenchmarkHistogramObserve|BenchmarkRegistry|BenchmarkTracePerQuery|BenchmarkRateWindowMark|BenchmarkServerSubmit' -benchtime 1x

# Hot-path microbenchmarks: repeat-query submission with the zero-compile
# hot path (plan cache + result fast path) on vs off. The representative
# (cluster-latency) comparison is the server-hot experiment in restore-bench.
bench-hot:
	$(GO) test ./internal/server -run '^$$' -bench 'BenchmarkServerHot' -benchmem

# One-iteration smoke of the hot-path benchmark for every `make check`.
bench-hot-smoke:
	$(GO) test ./internal/server -run '^$$' -bench 'BenchmarkServerHot' -benchtime 1x

# Sharded-core microbenchmark: the all-disjoint round on a single-domain
# core vs an 8-shard one. The representative scaling curve (shards
# 1/2/4/8 under op-latency emulation) is the server-shard experiment in
# restore-bench.
bench-shard:
	$(GO) test ./internal/server -run '^$$' -bench 'BenchmarkServerShard' -benchmem

# One-iteration smoke of the shard benchmark for every `make check`.
bench-shard-smoke:
	$(GO) test ./internal/server -run '^$$' -bench 'BenchmarkServerShard' -benchtime 1x

# Engine data-plane microbenchmarks: the reduce-side ordering kernel
# (concat + stable sort vs sorted runs + k-way merge) and the whole
# shuffle-heavy order job on each plane. The representative sweep (reduce
# workers 1/2/4/8 with alloc totals) is the server-engine experiment in
# restore-bench.
bench-engine:
	$(GO) test ./internal/mapred -run '^$$' -bench 'BenchmarkShuffleKernel|BenchmarkEngineOrderJob' -benchmem

# One-iteration smoke of the engine benchmarks for every `make check`.
bench-engine-smoke:
	$(GO) test ./internal/mapred -run '^$$' -bench 'BenchmarkShuffleKernel|BenchmarkEngineOrderJob' -benchtime 1x

# The fleet backend battery: the backend differential oracle (the worker
# fleet must leave repository and DFS byte-identical to the in-process
# engine), the fault-injection suite (worker crash before/mid/after map,
# torn shuffle pulls, duplicate completions, repository-backed recovery),
# and the wire-codec round-trip property. Runs twice under the detector:
# coordinator dispatch and worker slot interleavings differ per run.
race-fleet:
	$(GO) test -race -count=2 ./internal/fleet/...
	$(GO) test -race -count=2 -run 'TestCodecRoundTrip|TestCodecRejects' ./internal/mapred

# Fleet microbenchmark: a grouped-aggregate query stream through a two-worker
# HTTP fleet. The representative scaling curve (fleet 1/2/3 with per-task
# compute emulation) is the server-fleet experiment in restore-bench.
bench-fleet:
	$(GO) test ./internal/fleet -run '^$$' -bench 'BenchmarkFleet' -benchmem

# One-iteration smoke of the fleet benchmark for every `make check`.
bench-fleet-smoke:
	$(GO) test ./internal/fleet -run '^$$' -bench 'BenchmarkFleet' -benchtime 1x

# Fails when an exported identifier in the documented packages
# (internal/server, internal/dfs, internal/core, root access.go) lacks a doc
# comment; those comments are the ground truth docs/ARCHITECTURE.md points at.
docs-check:
	sh scripts/docs_check.sh
