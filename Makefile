# Developer/CI entry points. `make check` is the gate referenced in README.

GO ?= go

.PHONY: check fmt vet test race race-server docs-check build

check: fmt vet docs-check race race-server

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency and crash-recovery battery (property/stress/drain tests of
# the conflict-aware scheduler, plus the WAL torn-tail/replay tests) runs
# twice under the detector: interleavings differ per run.
race-server:
	$(GO) test -race -count=2 ./internal/server/... ./internal/persist/...

# Fails when an exported identifier in the documented packages
# (internal/server, internal/dfs, internal/core, root access.go) lacks a doc
# comment; those comments are the ground truth docs/ARCHITECTURE.md points at.
docs-check:
	sh scripts/docs_check.sh
