# Developer/CI entry points. `make check` is the gate referenced in README.

GO ?= go

.PHONY: check fmt vet test race build

check: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
