# Developer/CI entry points. `make check` is the gate referenced in README.

GO ?= go

.PHONY: check fmt vet test race race-server build

check: fmt vet race race-server

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency battery (property/stress/drain tests of the conflict-aware
# scheduler) runs twice under the detector: interleavings differ per run.
race-server:
	$(GO) test -race -count=2 ./internal/server/...
