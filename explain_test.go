package restore

import (
	"bytes"
	"strings"
	"testing"
)

func TestExplainReportsReuseWithoutExecuting(t *testing.T) {
	s := New()
	seedPaperData(t, s, 300)
	if _, err := s.Execute(sysQ1); err != nil {
		t.Fatal(err)
	}
	before := s.Repository().Len()

	ex, err := s.Explain(sysQ2)
	if err != nil {
		t.Fatal(err)
	}
	if ex.JobsBeforeRewrite != 2 {
		t.Errorf("jobs before = %d, want 2", ex.JobsBeforeRewrite)
	}
	if len(ex.Rewrites) == 0 {
		t.Error("explain found no reuse after Q1")
	}
	// Explain must not execute or mutate anything.
	if s.Repository().Len() != before {
		t.Error("explain changed the repository")
	}
	if s.FS().Exists("out/q2") {
		t.Error("explain executed the query")
	}
	for _, e := range s.Repository().All() {
		if e.UseCount != 0 {
			t.Errorf("explain bumped use count on %s", e.ID)
		}
	}
}

func TestExplainParseError(t *testing.T) {
	s := New()
	if _, err := s.Explain("garbage"); err == nil {
		t.Error("bad script accepted")
	}
}

func TestSaveLoadRepositoryThroughSystem(t *testing.T) {
	s := New()
	seedPaperData(t, s, 300)
	if _, err := s.Execute(sysQ1); err != nil {
		t.Fatal(err)
	}
	n := s.Repository().Len()
	if n == 0 {
		t.Fatal("nothing stored")
	}
	var buf bytes.Buffer
	if err := s.SaveRepository(&buf); err != nil {
		t.Fatal(err)
	}

	// A "restarted" system over the same DFS: reload the repository and the
	// stored files are still reusable.
	if err := s.LoadRepositoryFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s.Repository().Len() != n {
		t.Fatalf("reloaded %d entries, want %d", s.Repository().Len(), n)
	}
	res, err := s.Execute(strings.Replace(sysQ1, "out/q1", "out/q1_after_reload", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Error("reloaded repository produced no reuse")
	}

	if err := s.LoadRepositoryFrom(strings.NewReader("junk")); err == nil {
		t.Error("corrupt repository accepted")
	}
}
