// Command pigsh runs dataflow scripts through the ReStore system: it seeds
// an in-memory DFS with a generated workload, executes one or more script
// files sequentially against a shared repository, and reports what each
// query reused, stored, and cost.
//
// Usage:
//
//	pigsh -data pigmix script1.pig script2.pig
//	pigsh -data synth -heuristic conservative -show 10 query.pig
//	echo "A = load 'pigmix/users' as (name); store A into 'o';" | pigsh -data pigmix -
//
// Running several scripts (or the same script twice) against one pigsh
// invocation demonstrates cross-query reuse: later scripts are rewritten
// against the outputs stored by earlier ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/pigmix"
	"repro/internal/synth"
)

func main() {
	var (
		data      = flag.String("data", "pigmix", "seed data set: pigmix, pigmix-small, synth, none")
		heuristic = flag.String("heuristic", "aggressive", "sub-job heuristic: off, conservative, aggressive, all")
		noReuse   = flag.Bool("no-reuse", false, "disable plan matching and rewriting")
		show      = flag.Int("show", 5, "result rows to print per output (0 = none)")
		explain   = flag.Bool("explain", false, "dry-run: report what each script would reuse, without executing")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "pigsh: no scripts given (use - for stdin)")
		os.Exit(2)
	}

	h, err := parseHeuristic(*heuristic)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pigsh:", err)
		os.Exit(2)
	}
	sys := restore.New(
		restore.WithHeuristic(h),
		restore.WithReuse(!*noReuse),
	)
	if err := seed(sys, *data); err != nil {
		fmt.Fprintln(os.Stderr, "pigsh:", err)
		os.Exit(1)
	}

	for _, arg := range flag.Args() {
		src, err := readScript(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pigsh:", err)
			os.Exit(1)
		}
		if *explain {
			ex, err := sys.Explain(src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pigsh: %s: %v\n", arg, err)
				os.Exit(1)
			}
			fmt.Printf("-- %s (explain) --\n", arg)
			fmt.Printf("jobs: %d -> %d after rewriting\n", ex.JobsBeforeRewrite, ex.JobsAfterRewrite)
			for _, rw := range ex.Rewrites {
				fmt.Printf("would reuse %s via %s\n", rw.OutputPath, rw.EntryID)
			}
			for want, have := range ex.Aliases {
				fmt.Printf("output %s already available as %s\n", want, have)
			}
			fmt.Println()
			continue
		}
		res, err := sys.Execute(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pigsh: %s: %v\n", arg, err)
			os.Exit(1)
		}
		report(sys, arg, res, *show)
	}
}

func parseHeuristic(name string) (restore.Heuristic, error) {
	switch name {
	case "off":
		return restore.HeuristicOff, nil
	case "conservative":
		return restore.HeuristicConservative, nil
	case "aggressive":
		return restore.HeuristicAggressive, nil
	case "all", "no-heuristic":
		return restore.HeuristicAll, nil
	default:
		return 0, fmt.Errorf("unknown heuristic %q", name)
	}
}

func seed(sys *restore.System, data string) error {
	switch data {
	case "pigmix":
		inst := pigmix.Instance150GB()
		if err := pigmix.Generate(sys.FS(), inst.Config); err != nil {
			return err
		}
		return setScale(sys, pigmix.PathPageViews, inst.TargetBytes)
	case "pigmix-small":
		inst := pigmix.Instance15GB()
		if err := pigmix.Generate(sys.FS(), inst.Config); err != nil {
			return err
		}
		return setScale(sys, pigmix.PathPageViews, inst.TargetBytes)
	case "synth":
		if err := synth.Generate(sys.FS(), 40_000, 4, 11); err != nil {
			return err
		}
		return setScale(sys, synth.Path, 40<<30)
	case "none":
		return nil
	default:
		return fmt.Errorf("unknown data set %q", data)
	}
}

func setScale(sys *restore.System, path string, target int64) error {
	st, err := sys.FS().StatFile(path)
	if err != nil {
		return err
	}
	sys.Cluster().ScaleFactor = float64(target) / float64(st.Bytes)
	return nil
}

func readScript(arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

func report(sys *restore.System, name string, res *restore.Result, show int) {
	fmt.Printf("-- %s --\n", name)
	fmt.Printf("simulated time: %v over %d job(s)\n", res.SimulatedTime.Round(1e9), len(res.Jobs))
	for _, rw := range res.Rewrites {
		kind := "sub-plan"
		if rw.WholeJob {
			kind = "whole job"
		}
		fmt.Printf("reused %s via %s (%s)\n", rw.OutputPath, rw.EntryID, kind)
	}
	if res.Registered > 0 {
		fmt.Printf("stored %d new repository entr(ies); repository now holds %d\n",
			res.Registered, sys.Repository().Len())
	}
	for requested, actual := range res.Outputs {
		label := requested
		if actual != requested {
			label = fmt.Sprintf("%s (aliased to stored %s)", requested, actual)
		}
		rows, err := sys.ReadOutputTSV(res, requested)
		if err != nil {
			fmt.Printf("output %s: error: %v\n", label, err)
			continue
		}
		fmt.Printf("output %s: %d rows\n", label, len(rows))
		for i, row := range rows {
			if i >= show {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %s\n", row)
		}
	}
	fmt.Println()
}
