// Command restored runs the ReStore query service: a long-lived daemon that
// accepts Pig Latin workflows over HTTP/JSON from many concurrent clients,
// executes them through the full ReStore stack (matching, rewriting, sub-job
// materialization, repository management), deduplicates identical in-flight
// queries, and keeps its repository and DFS durable across restarts.
//
// Usage:
//
//	restored                                    # serve on :7733, in-memory only
//	restored -addr 127.0.0.1:8080               # pick the listen address
//	restored -state-dir /var/lib/restored       # durable repository + DFS (WAL)
//	restored -wal-sync 20ms                     # fsync cadence (0 = every record)
//	restored -compact-every 10m                 # snapshot + log-truncation cadence
//	restored -pigmix                            # preload the PigMix tables
//	restored -heuristic conservative            # sub-job enumeration heuristic
//	restored -workers 8 -barrier-window 32      # concurrent scheduler tuning
//	restored -keep-policy size-reduction,time-saving   # §5 rules 1+2
//	restored -eviction-window 100               # §5 rule 3 (workflows)
//	restored -repo-budget-bytes 1073741824      # LRU size budget (1 GiB)
//	restored -output-retention 500 -gc-every 30s  # retire stale out/ files
//	restored -plan-cache 1024                   # prepared-plan cache capacity (0 = off)
//	restored -keep-results                      # serve exact repeats from stored bytes
//	restored -log-level debug -log-format json  # structured ops logging
//	restored -fleet-workers http://127.0.0.1:7741,http://127.0.0.1:7742   # execute on a restore-worker fleet
//	restored -debug-addr 127.0.0.1:6060         # net/http/pprof sidecar
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/query       {"script": "...", "readOutputs": true}   (?trace=1 adds a stage breakdown)
//	POST /v1/explain     {"script": "..."}
//	POST /v1/datasets    {"path": "...", "schema": "a, b:int", "lines": [...]}
//	GET  /v1/datasets?prefix=...
//	GET  /v1/repository
//	GET  /v1/metrics
//	GET  /v1/debug/slow
//	GET  /v1/healthz
//	POST /v1/checkpoint
//	GET  /metrics        (Prometheus text exposition)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers on the default mux, served only at -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	restore "repro"
	"repro/internal/fleet"
	"repro/internal/pigmix"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7733", "listen address")
		stateDir     = flag.String("state-dir", "", "directory for durable repository+DFS state (empty = in-memory only)")
		walSync      = flag.Duration("wal-sync", server.DefaultWALSync, "WAL fsync cadence — the crash-loss window for acknowledged work (0 = fsync every record; requires -state-dir)")
		compactEvery = flag.Duration("compact-every", 5*time.Minute, "WAL compaction interval: snapshot + log truncation under a drain barrier (requires -state-dir; 0 compacts only at shutdown)")
		saveInterval = flag.Duration("save-interval", 0, "deprecated alias for -compact-every (overrides it when set)")
		queueDepth   = flag.Int("queue-depth", 256, "bounded execution queue; overflow returns 503")
		workers      = flag.Int("workers", 0, "execution worker pool: how many path-disjoint workflows run concurrently (0 = GOMAXPROCS, 1 = serialized)")
		shards       = flag.Int("shards", 0, "execution-core shard count: DFS namespace, repository usage state, lease admission, WAL streams, and GC scanners split into N independently locked shards (0 = GOMAXPROCS, 1 = classic single-domain core)")
		barrier      = flag.Int("barrier-window", 16, "FIFO overtake window: queued work may pass a blocked head only within the first N queue positions (1 = strict FIFO)")
		heuristic    = flag.String("heuristic", "aggressive", "sub-job heuristic: off, conservative, aggressive, all")
		preloadPig   = flag.Bool("pigmix", false, "preload the PigMix tables (15GB instance, laptop scale)")
		keepPolicy   = flag.String("keep-policy", "all", "§5 keep rules: 'all', or a comma list of 'size-reduction' (rule 1) and 'time-saving' (rule 2)")
		evictWindow  = flag.Int64("eviction-window", 0, "§5 rule 3: evict repository entries not reused within N workflows (0 = off)")
		repoBudget   = flag.Int64("repo-budget-bytes", 0, "repository size budget: evict least-recently-used entries until stored bytes fit (0 = unbounded)")
		outRetention = flag.Int64("output-retention", 0, "retire user-named out/... files not re-requested within N workflows and referenced by no repository entry (0 = keep forever)")
		gcEvery      = flag.Duration("gc-every", time.Minute, "background growth-management pass cadence: full eviction sweep, size budget, output retention (0 = per-query eviction only)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		debugAddr    = flag.String("debug-addr", "", "listen address for the net/http/pprof debug server (empty = off)")
		slowRing     = flag.Int("slow-ring", 64, "how many slowest query completions /v1/debug/slow retains")
		planCache    = flag.Int("plan-cache", restore.DefaultPlanCacheSize, "prepared-plan cache capacity: repeat scripts skip parse/plan/compile (0 = off)")
		keepResults  = flag.Bool("keep-results", false, "register user-named query outputs in the repository so exact whole-query repeats are served from stored bytes without re-execution")
		mapPar       = flag.Int("map-parallelism", 0, "concurrent map tasks per job in the engine's map-task pool (0 = GOMAXPROCS)")
		reduceTasks  = flag.Int("reduce-tasks", restore.DefaultReduceTasks, "reduce partitions per job: how many hash partitions each shuffle splits into")
		reducePar    = flag.Int("reduce-parallelism", 0, "concurrent reduce partitions per job in the engine's reduce pool (0 = GOMAXPROCS)")
		fleetAddrs   = flag.String("fleet-workers", "", "comma list of restore-worker base URLs; when set, map tasks and reduce partitions execute on this worker fleet instead of in-process")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restored:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	h, err := parseHeuristic(*heuristic)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restored:", err)
		os.Exit(2)
	}
	policy, err := parsePolicy(*keepPolicy, *evictWindow, *repoBudget, *outRetention)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restored:", err)
		os.Exit(2)
	}

	// flag 0 means "fsync every record"; Config expresses that as the
	// negative SyncEveryRecord sentinel (Config 0 selects the default).
	cfgWALSync := *walSync
	if cfgWALSync == 0 {
		cfgWALSync = server.SyncEveryRecord
	}
	cfgCompact := resolveCompactInterval(flag.CommandLine, *compactEvery, *saveInterval, logger)

	opts := append([]restore.Option{
		restore.WithHeuristic(h),
		restore.WithPolicy(policy),
		restore.WithPlanCache(*planCache),
		restore.WithRegisterFinalOutputs(*keepResults),
		restore.WithShards(*shards),
	}, engineOptions(*mapPar, *reduceTasks, *reducePar)...)
	sys := restore.New(opts...)
	var coord *fleet.Coordinator
	if *fleetAddrs != "" {
		var addrs []string
		for _, a := range strings.Split(*fleetAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, strings.TrimSuffix(a, "/"))
			}
		}
		if len(addrs) == 0 {
			fmt.Fprintln(os.Stderr, "restored: -fleet-workers lists no worker addresses")
			os.Exit(2)
		}
		coord = fleet.NewCoordinator(sys.Engine(), fleet.Config{
			FS:      sys.FS(),
			Workers: addrs,
			// A stored path may serve reuse-as-recovery when the repository
			// still references it (a registered sub-job output) or it lives
			// under the restore/ prefix a just-executed job materialized.
			RepoCheck: func(path string) bool {
				return sys.Repository().ReferencesPath(path) || strings.HasPrefix(path, "restore/")
			},
		})
		sys.SetBackend(coord)
		logger.Info("fleet execution backend enabled", "workers", len(addrs))
	}
	srv, err := server.New(server.Config{
		System:          sys,
		StateDir:        *stateDir,
		WALSyncInterval: cfgWALSync,
		CompactInterval: cfgCompact,
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		BarrierWindow:   *barrier,
		GCInterval:      *gcEvery,
		SlowRingSize:    *slowRing,
		Logger:          logger,
		Fleet:           coord,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "restored:", err)
		os.Exit(1)
	}

	// Preload after New so a loaded checkpoint wins over generation: only
	// generate when the tables are not already there. The cluster scale is
	// not part of the checkpoint, so it must be re-derived on every start —
	// skipping it after a restart would silently reset simulated times to
	// laptop scale.
	if *preloadPig {
		inst := pigmix.Instance15GB()
		if !sys.FS().Exists(pigmix.PathPageViews) {
			if err := pigmix.Generate(sys.FS(), inst.Config); err != nil {
				fmt.Fprintln(os.Stderr, "restored: pigmix:", err)
				os.Exit(1)
			}
			logger.Info("preloaded PigMix instance", "instance", inst.Name)
		}
		if err := sys.SetDataScale(pigmix.PathPageViews, inst.TargetBytes); err != nil {
			fmt.Fprintln(os.Stderr, "restored: pigmix:", err)
			os.Exit(1)
		}
	}

	if *debugAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux, which nothing else in the daemon serves —
		// so profiling stays off the query port and can bind to a loopback
		// or otherwise firewalled address.
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("debug server failed", "error", err.Error())
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restored:", err)
		os.Exit(1)
	}
	logger.Info("restored listening", "addr", ln.Addr().String(), "repositoryEntries", sys.Repository().Len(), "shards", sys.Shards())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var srvErr error
	select {
	case s := <-sig:
		logger.Info("draining and checkpointing", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "restored: shutdown:", err)
			os.Exit(1)
		}
		srvErr = <-serveErr
	case srvErr = <-serveErr:
	}
	if srvErr != nil && srvErr != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "restored: serve:", srvErr)
		os.Exit(1)
	}
}

// engineOptions translates the engine tuning flags (-map-parallelism,
// -reduce-tasks, -reduce-parallelism) into System options.
func engineOptions(mapPar, reduceTasks, reducePar int) []restore.Option {
	return []restore.Option{
		restore.WithMapParallelism(mapPar),
		restore.WithReducePartitions(reduceTasks),
		restore.WithReduceParallelism(reducePar),
	}
}

// resolveCompactInterval reconciles -compact-every with its deprecated alias
// -save-interval. An explicitly set -compact-every always wins — previously
// any -save-interval silently overrode it, even when -compact-every was
// spelled out on the command line. -save-interval alone still works (with a
// deprecation warning); with neither set, the -compact-every default applies.
func resolveCompactInterval(fs *flag.FlagSet, compact, save time.Duration, logger *slog.Logger) time.Duration {
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "compact-every" {
			explicit = true
		}
	})
	if save > 0 {
		if explicit {
			logger.Warn("-save-interval is deprecated and ignored because -compact-every is set",
				"compactEvery", compact, "saveInterval", save)
			return compact
		}
		logger.Warn("-save-interval is deprecated; use -compact-every",
			"saveInterval", save)
		return save
	}
	return compact
}

// buildLogger assembles the daemon's structured logger from the -log-level
// and -log-format flags. Logs go to stderr (stdout stays clean for tooling).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// parsePolicy assembles the §5 repository policy from the daemon flags.
// Rule 4 (input-version invalidation) is always on — the daemon must never
// serve stale results; the keep rules, window, budget, and retention are
// opt-in.
func parsePolicy(keep string, window, budget, retention int64) (restore.Policy, error) {
	p := restore.Policy{
		CheckInputVersions: true,
		EvictionWindow:     window,
		RepoBudgetBytes:    budget,
		OutputRetention:    retention,
	}
	switch keep {
	case "", "all":
		p.KeepAll = true
		return p, nil
	}
	for _, rule := range strings.Split(keep, ",") {
		switch strings.TrimSpace(rule) {
		case "size-reduction":
			p.RequireSizeReduction = true
		case "time-saving":
			p.RequireTimeSaving = true
		default:
			return p, fmt.Errorf("unknown keep rule %q (want 'all', 'size-reduction', or 'time-saving')", rule)
		}
	}
	return p, nil
}

func parseHeuristic(name string) (restore.Heuristic, error) {
	switch name {
	case "off":
		return restore.HeuristicOff, nil
	case "conservative":
		return restore.HeuristicConservative, nil
	case "aggressive":
		return restore.HeuristicAggressive, nil
	case "all":
		return restore.HeuristicAll, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q", name)
}
