package main

import (
	"bytes"
	"flag"
	"log/slog"
	"runtime"
	"strings"
	"testing"
	"time"

	restore "repro"
)

// parseFlags builds a fresh FlagSet with the two persistence-cadence flags
// (default values matching main) and parses args through it, so each case
// sees exactly the flags the user typed — flag.Visit only reports
// explicitly set flags, which is what the precedence fix keys on.
func parseFlags(t *testing.T, args ...string) (*flag.FlagSet, time.Duration, time.Duration) {
	t.Helper()
	fs := flag.NewFlagSet("restored", flag.ContinueOnError)
	compact := fs.Duration("compact-every", 5*time.Minute, "")
	save := fs.Duration("save-interval", 0, "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return fs, *compact, *save
}

// TestEngineFlagWiring pins that the engine tuning flags reach the
// MapReduce engine: -map-parallelism, -reduce-tasks, and
// -reduce-parallelism parse with main's defaults and land on the
// corresponding Engine fields through engineOptions.
func TestEngineFlagWiring(t *testing.T) {
	cases := []struct {
		name                             string
		args                             []string
		wantMapPar, wantTasks, wantRdPar int
	}{
		{"defaults", nil, 0, restore.DefaultReduceTasks, 0},
		{"explicit", []string{"-map-parallelism", "3", "-reduce-tasks", "7", "-reduce-parallelism", "2"}, 3, 7, 2},
		{"reduce only", []string{"-reduce-tasks", "16"}, 0, 16, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("restored", flag.ContinueOnError)
			mapPar := fs.Int("map-parallelism", 0, "")
			reduceTasks := fs.Int("reduce-tasks", restore.DefaultReduceTasks, "")
			reducePar := fs.Int("reduce-parallelism", 0, "")
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse %v: %v", tc.args, err)
			}
			sys := restore.New(engineOptions(*mapPar, *reduceTasks, *reducePar)...)
			eng := sys.Engine()
			if eng.MapParallelism != tc.wantMapPar {
				t.Errorf("MapParallelism = %d, want %d", eng.MapParallelism, tc.wantMapPar)
			}
			if eng.ReduceTasks != tc.wantTasks {
				t.Errorf("ReduceTasks = %d, want %d", eng.ReduceTasks, tc.wantTasks)
			}
			if eng.ReduceParallelism != tc.wantRdPar {
				t.Errorf("ReduceParallelism = %d, want %d", eng.ReduceParallelism, tc.wantRdPar)
			}
		})
	}
	// The 0 defaults mean GOMAXPROCS at run time, resolved inside the
	// engine's phases; the wiring must pass them through unresolved so a
	// later GOMAXPROCS change takes effect per job.
	if n := runtime.GOMAXPROCS(0); n < 1 {
		t.Fatalf("GOMAXPROCS = %d", n)
	}
}

// TestResolveCompactIntervalPrecedence pins the -save-interval /
// -compact-every reconciliation: an explicit -compact-every always wins, the
// deprecated -save-interval applies only when it is the only one set, and
// either use of -save-interval emits a deprecation warning.
func TestResolveCompactIntervalPrecedence(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		want     time.Duration
		wantWarn bool
	}{
		{"defaults", nil, 5 * time.Minute, false},
		{"explicit compact-every", []string{"-compact-every", "2m"}, 2 * time.Minute, false},
		{"save-interval alone (deprecated alias)", []string{"-save-interval", "90s"}, 90 * time.Second, true},
		// The regression: -save-interval used to silently override an
		// explicitly typed -compact-every.
		{"explicit compact-every beats save-interval", []string{"-compact-every", "2m", "-save-interval", "90s"}, 2 * time.Minute, true},
		{"order does not matter", []string{"-save-interval", "90s", "-compact-every", "2m"}, 2 * time.Minute, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, compact, save := parseFlags(t, tc.args...)
			var buf bytes.Buffer
			logger := slog.New(slog.NewTextHandler(&buf, nil))
			got := resolveCompactInterval(fs, compact, save, logger)
			if got != tc.want {
				t.Errorf("resolveCompactInterval(%v) = %v, want %v", tc.args, got, tc.want)
			}
			warned := strings.Contains(buf.String(), "deprecated")
			if warned != tc.wantWarn {
				t.Errorf("deprecation warning emitted = %v, want %v (log: %q)", warned, tc.wantWarn, buf.String())
			}
		})
	}
}
