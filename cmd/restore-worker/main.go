// Command restore-worker runs one fleet worker process: a stateless task
// executor the restored daemon (started with -fleet-workers) ships compiled
// map tasks and reduce partitions to over HTTP/JSON. Workers hold no DFS —
// inputs arrive as raw partition bytes, outputs return as raw bytes — and
// retain only the sorted shuffle runs of executed map tasks so reduce-side
// peers can pull them (GET /v1/shuffle).
//
// Usage:
//
//	restore-worker                                   # serve on :7741
//	restore-worker -addr 127.0.0.1:7742              # pick the listen address
//	restore-worker -worker-addr http://10.0.0.2:7742 # advertised base URL (peers pull shuffle runs from it)
//	restore-worker -slots 4                          # concurrent task slots (0 = GOMAXPROCS)
//	restore-worker -task-delay 5ms                   # emulated per-task compute latency (benchmarks)
//
// Endpoints: POST /v1/map, POST /v1/reduce, GET /v1/shuffle, POST /v1/release,
// GET /v1/healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr       = flag.String("addr", ":7741", "listen address")
		workerAddr = flag.String("worker-addr", "", "advertised base URL peers and the coordinator reach this worker at (default http://<listen addr>)")
		slots      = flag.Int("slots", 0, "concurrent task execution slots (0 = GOMAXPROCS)")
		taskDelay  = flag.Duration("task-delay", 0, "emulated per-task compute latency (benchmark knob; 0 = off)")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restore-worker:", err)
		os.Exit(1)
	}
	advertised := *workerAddr
	if advertised == "" {
		advertised = "http://" + ln.Addr().String()
	}
	w := fleet.NewWorker(fleet.WorkerConfig{
		Addr:      advertised,
		Slots:     *slots,
		TaskDelay: *taskDelay,
	})
	slog.Info("restore-worker listening", "addr", ln.Addr().String(), "advertised", advertised, "slots", *slots)

	srv := &http.Server{Handler: w.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var srvErr error
	select {
	case s := <-sig:
		slog.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "restore-worker: shutdown:", err)
			os.Exit(1)
		}
		srvErr = <-serveErr
	case srvErr = <-serveErr:
	}
	if srvErr != nil && srvErr != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "restore-worker: serve:", srvErr)
		os.Exit(1)
	}
}
