// Command restorectl inspects a ReStore repository by replaying a query
// stream and dumping the resulting repository state: entries in match-scan
// order, their statistics, and the effects of the §5 policies.
//
// Usage:
//
//	restorectl                       # replay the PigMix variant stream
//	restorectl -policy rule1         # replay under the Rule-1 policy
//	restorectl -policy window=3      # replay with a 3-workflow eviction window
//	restorectl -json                 # dump entries as JSON (plans included)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/pigmix"
)

func main() {
	var (
		policyName = flag.String("policy", "keep-all", "repository policy: keep-all, rule1, rule2, window=N")
		asJSON     = flag.Bool("json", false, "dump repository entries as JSON")
	)
	flag.Parse()

	policy, err := parsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "restorectl:", err)
		os.Exit(2)
	}

	sys := restore.New(restore.WithPolicy(policy))
	inst := pigmix.Instance15GB()
	if err := pigmix.Generate(sys.FS(), inst.Config); err != nil {
		fmt.Fprintln(os.Stderr, "restorectl:", err)
		os.Exit(1)
	}

	for i, name := range pigmix.VariantNames() {
		src, err := pigmix.Query(name, fmt.Sprintf("out/%s_%d", name, i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "restorectl:", err)
			os.Exit(1)
		}
		res, err := sys.Execute(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restorectl: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("ran %-5s reused=%d registered=%d evicted=%d repo=%d\n",
			name, len(res.Rewrites), res.Registered, len(res.Evicted), sys.Repository().Len())
	}

	fmt.Printf("\nrepository (%d entries, %d stored bytes) in §3 match-scan order:\n",
		sys.Repository().Len(), sys.Repository().TotalStoredBytes())
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sys.Repository().Ordered()); err != nil {
			fmt.Fprintln(os.Stderr, "restorectl:", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range sys.Repository().Ordered() {
		fmt.Printf("%-10s ops=%-2d out=%-22s in=%-8d out=%-8d used=%d last-seq=%d\n",
			e.ID, e.Plan.Len()-1, e.OutputPath, e.InputBytes, e.OutputBytes, e.UseCount, e.LastUsedSeq)
	}
}

func parsePolicy(name string) (restore.Policy, error) {
	switch {
	case name == "keep-all":
		return core.DefaultPolicy(), nil
	case name == "rule1":
		return restore.Policy{RequireSizeReduction: true, CheckInputVersions: true}, nil
	case name == "rule2":
		return restore.Policy{RequireTimeSaving: true, CheckInputVersions: true}, nil
	case strings.HasPrefix(name, "window="):
		n, err := strconv.ParseInt(strings.TrimPrefix(name, "window="), 10, 64)
		if err != nil || n < 1 {
			return restore.Policy{}, fmt.Errorf("bad eviction window in %q", name)
		}
		return restore.Policy{KeepAll: true, EvictionWindow: n, CheckInputVersions: true}, nil
	default:
		return restore.Policy{}, fmt.Errorf("unknown policy %q", name)
	}
}
