// Command restorectl inspects and drives ReStore.
//
// Local mode (default) replays the PigMix variant stream in-process and
// dumps the resulting repository state: entries in match-scan order, their
// statistics, and the effects of the §5 policies. The repository can be
// persisted and restored across runs:
//
//	restorectl                       # replay the PigMix variant stream
//	restorectl -policy rule1         # replay under the Rule-1 policy
//	restorectl -policy window=3      # replay with a 3-workflow eviction window
//	restorectl -json                 # dump entries as JSON (plans included)
//	restorectl -save repo.json       # persist repository (+ repo.json.dfs) after the replay
//	restorectl -load repo.json       # seed repository (+ DFS snapshot) before the replay
//
// Client mode talks to a running restored daemon instead:
//
//	restorectl -server http://127.0.0.1:7733 submit -f query.pig [-rows] [-trace]
//	restorectl -server http://127.0.0.1:7733 explain -f query.pig
//	restorectl -server http://127.0.0.1:7733 upload -path data/x -schema 'a, b:int' -f data.tsv
//	restorectl -server http://127.0.0.1:7733 datasets [prefix]
//	restorectl -server http://127.0.0.1:7733 repo
//	restorectl -server http://127.0.0.1:7733 metrics [-watch 2s]
//	restorectl -server http://127.0.0.1:7733 fleet
//	restorectl -server http://127.0.0.1:7733 slow
//	restorectl -server http://127.0.0.1:7733 checkpoint
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	restore "repro"
	"repro/internal/core"
	"repro/internal/pigmix"
	"repro/internal/server"
)

func main() {
	var (
		policyName = flag.String("policy", "keep-all", "repository policy: keep-all, rule1, rule2, window=N")
		asJSON     = flag.Bool("json", false, "dump repository entries as JSON")
		saveFile   = flag.String("save", "", "local mode: save the repository to FILE after the replay")
		loadFile   = flag.String("load", "", "local mode: load the repository from FILE before the replay")
		serverURL  = flag.String("server", "", "base URL of a running restored daemon (enables client mode)")
	)
	flag.Parse()

	if *serverURL != "" {
		// Local-only flags would be silently ignored in client mode; a user
		// passing them expects behavior the daemon path does not implement.
		if *saveFile != "" || *loadFile != "" || *policyName != "keep-all" {
			fmt.Fprintln(os.Stderr, "restorectl: -save/-load/-policy are local-replay flags and have no effect with -server (use 'checkpoint' or start restored with -state-dir)")
			os.Exit(2)
		}
		if err := runClient(server.NewClient(*serverURL), flag.Args(), *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "restorectl:", err)
			os.Exit(1)
		}
		return
	}
	if err := runLocal(*policyName, *asJSON, *saveFile, *loadFile); err != nil {
		fmt.Fprintln(os.Stderr, "restorectl:", err)
		os.Exit(1)
	}
}

// ---- local replay mode ----

func runLocal(policyName string, asJSON bool, saveFile, loadFile string) error {
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}

	sys := restore.New(restore.WithPolicy(policy))
	inst := pigmix.Instance15GB()

	// A DFS snapshot saved alongside the repository already contains the
	// PigMix tables, so import it instead of regenerating (Import replaces
	// the whole FS — generating first would be thrown away).
	imported := false
	if loadFile != "" {
		switch df, err := os.Open(dfsSidecar(loadFile)); {
		case err == nil:
			ierr := sys.FS().Import(df)
			df.Close()
			if ierr != nil {
				return ierr
			}
			imported = true
		case !os.IsNotExist(err):
			return err
		default:
			fmt.Printf("note: %s missing; loaded entries will be evicted as their files are absent\n", dfsSidecar(loadFile))
		}
	}
	if !imported {
		if err := pigmix.Generate(sys.FS(), inst.Config); err != nil {
			return err
		}
	}
	if loadFile != "" {
		// Repository after the DFS: without the stored files every loaded
		// entry would be evicted on the first query.
		f, err := os.Open(loadFile)
		if err != nil {
			return err
		}
		err = sys.LoadRepositoryFrom(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded repository from %s (%d entries)\n", loadFile, sys.Repository().Len())
	}

	for i, name := range pigmix.VariantNames() {
		src, err := pigmix.Query(name, fmt.Sprintf("out/%s_%d", name, i))
		if err != nil {
			return err
		}
		res, err := sys.Execute(src)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("ran %-5s reused=%d registered=%d evicted=%d repo=%d\n",
			name, len(res.Rewrites), res.Registered, len(res.Evicted), sys.Repository().Len())
	}

	fmt.Printf("\nrepository (%d entries, %d stored bytes) in §3 match-scan order:\n",
		sys.Repository().Len(), sys.Repository().TotalStoredBytes())
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sys.Repository().Ordered()); err != nil {
			return err
		}
	} else {
		printEntries(sys.Repository().Ordered())
	}

	if saveFile != "" {
		f, err := os.Create(saveFile)
		if err != nil {
			return err
		}
		df, err := os.Create(dfsSidecar(saveFile))
		if err != nil {
			f.Close()
			return err
		}
		err = sys.SaveState(f, df)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if cerr := df.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("saved repository to %s (+ DFS snapshot %s)\n", saveFile, dfsSidecar(saveFile))
	}
	return nil
}

// dfsSidecar names the DFS snapshot stored next to a repository file.
func dfsSidecar(repoFile string) string { return repoFile + ".dfs" }

func printEntries(entries []*core.Entry) {
	for _, e := range entries {
		fmt.Printf("%-10s ops=%-2d out=%-22s in=%-8d out=%-8d used=%d last-seq=%d\n",
			e.ID, e.Plan.Len()-1, e.OutputPath, e.InputBytes, e.OutputBytes, e.UseCount, e.LastUsedSeq)
	}
}

func parsePolicy(name string) (restore.Policy, error) {
	switch {
	case name == "keep-all":
		return core.DefaultPolicy(), nil
	case name == "rule1":
		return restore.Policy{RequireSizeReduction: true, CheckInputVersions: true}, nil
	case name == "rule2":
		return restore.Policy{RequireTimeSaving: true, CheckInputVersions: true}, nil
	case strings.HasPrefix(name, "window="):
		n, err := strconv.ParseInt(strings.TrimPrefix(name, "window="), 10, 64)
		if err != nil || n < 1 {
			return restore.Policy{}, fmt.Errorf("bad eviction window in %q", name)
		}
		return restore.Policy{KeepAll: true, EvictionWindow: n, CheckInputVersions: true}, nil
	default:
		return restore.Policy{}, fmt.Errorf("unknown policy %q", name)
	}
}

// ---- client mode ----

func runClient(c *server.Client, args []string, asJSON bool) error {
	if len(args) == 0 {
		return fmt.Errorf("client mode needs a command: submit, explain, upload, datasets, repo, metrics, fleet, slow, checkpoint")
	}
	switch cmd := args[0]; cmd {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		scriptFile := fs.String("f", "", "script FILE ('-' or empty for stdin)")
		showRows := fs.Bool("rows", false, "print each output's rows")
		showTrace := fs.Bool("trace", false, "print the submission's stage breakdown")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		script, err := readInput(*scriptFile)
		if err != nil {
			return err
		}
		var resp *server.QueryResponse
		if *showTrace {
			resp, err = c.SubmitTraced(script, *showRows)
		} else {
			resp, err = c.Submit(script, *showRows)
		}
		if err != nil {
			return err
		}
		res := resp.Result
		fmt.Printf("deduped=%v reused=%d registered=%d evicted=%d jobs=%d simulated=%s\n",
			resp.Deduped, len(res.Rewrites), res.Registered, len(res.Evicted), len(res.Jobs), res.SimulatedTime)
		for _, rw := range res.Rewrites {
			kind := "sub-job"
			if rw.WholeJob {
				kind = "whole-job"
			}
			fmt.Printf("  reuse %-9s job=%s entry=%s <- %s\n", kind, rw.JobID, rw.EntryID, rw.OutputPath)
		}
		for requested, actual := range res.Outputs {
			fmt.Printf("  output %s -> %s\n", requested, actual)
			if *showRows {
				for _, line := range resp.Rows[requested] {
					fmt.Println("    " + line)
				}
			}
		}
		if *showTrace && resp.Trace != nil {
			fmt.Printf("  trace: %s\n", resp.Trace)
		}
		return nil
	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		scriptFile := fs.String("f", "", "script FILE ('-' or empty for stdin)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		script, err := readInput(*scriptFile)
		if err != nil {
			return err
		}
		ex, err := c.Explain(script)
		if err != nil {
			return err
		}
		fmt.Printf("jobs %d -> %d after rewrite\n", ex.JobsBeforeRewrite, ex.JobsAfterRewrite)
		for _, rw := range ex.Rewrites {
			fmt.Printf("  would reuse entry=%s <- %s\n", rw.EntryID, rw.OutputPath)
		}
		for requested, actual := range ex.Aliases {
			fmt.Printf("  %s would be served from %s without executing\n", requested, actual)
		}
		return nil
	case "upload":
		fs := flag.NewFlagSet("upload", flag.ExitOnError)
		dataFile := fs.String("f", "", "TSV FILE ('-' or empty for stdin)")
		dataPath := fs.String("path", "", "DFS path for the dataset")
		dataSchema := fs.String("schema", "", "LOAD-AS schema declaration, e.g. 'user, views:int'")
		partitions := fs.Int("partitions", 1, "partition count")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dataPath == "" || *dataSchema == "" {
			return fmt.Errorf("upload needs -path and -schema")
		}
		data, err := readInput(*dataFile)
		if err != nil {
			return err
		}
		var lines []string
		for _, ln := range strings.Split(data, "\n") {
			// CRLF files would otherwise smuggle a \r into the last field
			// of every record.
			ln = strings.TrimSuffix(ln, "\r")
			if strings.TrimSpace(ln) != "" {
				lines = append(lines, ln)
			}
		}
		info, err := c.Upload(*dataPath, *dataSchema, *partitions, lines)
		if err != nil {
			return err
		}
		fmt.Printf("uploaded %s: %d records, %d bytes, %d partitions\n", info.Path, info.Records, info.Bytes, info.Partitions)
		return nil
	case "datasets":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		ds, err := c.Datasets(prefix)
		if err != nil {
			return err
		}
		for _, d := range ds {
			fmt.Printf("%-40s %8d bytes %8d records %d partitions\n", d.Path, d.Bytes, d.Records, d.Partitions)
		}
		return nil
	case "repo":
		repo, err := c.Repository()
		if err != nil {
			return err
		}
		fmt.Printf("repository (%d entries, %d stored bytes) in §3 match-scan order:\n",
			len(repo.Entries), repo.TotalStoredBytes)
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(repo.Entries)
		}
		printEntries(repo.Entries)
		return nil
	case "metrics":
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		watch := fs.Duration("watch", 0, "redraw a one-line live view every INTERVAL (e.g. 2s); 0 prints the JSON document once")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *watch > 0 {
			return watchMetrics(c, *watch)
		}
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	case "fleet":
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		if m.Fleet == nil {
			fmt.Println("no fleet: the daemon executes in-process (start restored with -fleet-workers)")
			return nil
		}
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(m.Fleet)
		}
		f := m.Fleet
		fmt.Printf("fleet: %d workers, map dispatched=%d reduce dispatched=%d retried=%d recovered=%d failures=%d shuffle pulled=%d bytes\n",
			len(f.Workers), f.MapTasksDispatched, f.ReduceTasksDispatched,
			f.TasksRetried, f.TasksRecovered, f.WorkerFailures, f.ShuffleBytesPulled)
		for _, w := range f.Workers {
			state := "alive"
			if !w.Alive {
				state = "DEAD"
			}
			fmt.Printf("  %-40s %-5s map=%-6d reduce=%-6d failures=%d\n",
				w.Addr, state, w.MapTasks, w.ReduceTasks, w.Failures)
		}
		return nil
	case "slow":
		slow, err := c.Slow()
		if err != nil {
			return err
		}
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(slow)
		}
		for _, q := range slow {
			status := "ok"
			if q.Error != "" {
				status = "ERR " + q.Error
			}
			script := strings.ReplaceAll(q.Script, "\n", " ")
			if len(script) > 60 {
				script = script[:60] + "…"
			}
			fmt.Printf("%-12s %s  %s\n  %s\n", formatDur(q.Trace.TotalNanos), q.When.Format("15:04:05"), status, script)
			fmt.Printf("  %s\n", q.Trace)
		}
		return nil
	case "checkpoint":
		if err := c.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("checkpointed")
		return nil
	default:
		return fmt.Errorf("unknown client command %q", cmd)
	}
}

// watchMetrics polls /v1/metrics on the interval and renders one compact
// status line per tick — the "is it healthy right now" view: current qps,
// reuse hit rate, queue depth, worker occupancy, and the latency quantiles.
// Runs until interrupted or the daemon stops answering.
func watchMetrics(c *server.Client, every time.Duration) error {
	fmt.Printf("%-8s %-8s %-8s %-7s %-6s %-10s %-10s %-8s\n",
		"qps1m", "hit", "queue", "exec", "fail", "p50", "p99", "entries")
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		p50, p99 := "-", "-"
		if m.Latency != nil {
			p50 = fmt.Sprintf("%.1fms", m.Latency.P50Millis)
			p99 = fmt.Sprintf("%.1fms", m.Latency.P99Millis)
		}
		fmt.Printf("%-8.1f %-8s %-8d %d/%-5d %-6d %-10s %-10s %-8d\n",
			m.QPS1m,
			fmt.Sprintf("%.0f%%", 100*m.Reuse.HitRate),
			m.QueueDepth, m.Executing, m.Workers,
			m.QueriesFailed, p50, p99, m.RepositoryEntries)
		<-t.C
	}
}

// formatDur renders nanoseconds compactly for the slow listing.
func formatDur(nanos int64) string {
	return time.Duration(nanos).Round(10 * time.Microsecond).String()
}

// readInput reads the named file, stdin for "-" or empty.
func readInput(name string) (string, error) {
	if name == "" || name == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(name)
	return string(b), err
}
