// Command restore-bench regenerates the tables and figures of the ReStore
// paper's evaluation (§7) on the simulated cluster.
//
// Usage:
//
//	restore-bench              # run every experiment
//	restore-bench -exp fig10   # run one experiment
//	restore-bench -list        # list experiment IDs
//	restore-bench -tiny        # use the fast test-sized configuration
//	restore-bench -exp server,server-ckpt -json BENCH_server.json   # record a baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment ID(s) to run, comma-separated (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		tiny     = flag.Bool("tiny", false, "use the tiny test configuration")
		jsonPath = flag.String("json", "", "also write the result tables as JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *tiny {
		cfg = bench.TinyConfig()
	}

	var tables []*bench.Table
	run := func(e bench.Experiment) {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restore-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tables = append(tables, table)
		fmt.Println(table.String())
		fmt.Printf("  (experiment wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *expID != "" {
		for _, id := range strings.Split(*expID, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "restore-bench:", err)
				os.Exit(1)
			}
			run(e)
		}
	} else {
		for _, e := range bench.Experiments() {
			run(e)
		}
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "restore-bench: json:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "restore-bench: json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
