// Command pigmixgen generates the PigMix-style and synthetic workload data
// and prints table statistics, exporting samples as TSV for inspection.
//
// Usage:
//
//	pigmixgen                        # default 150GB-profile instance stats
//	pigmixgen -instance 15gb
//	pigmixgen -rows 50000 -sample 3  # custom size, print 3 rows per table
//	pigmixgen -synth -rows 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dfs"
	"repro/internal/pigmix"
	"repro/internal/synth"
	"repro/internal/types"
)

func main() {
	var (
		instance = flag.String("instance", "150gb", "pigmix instance profile: 15gb or 150gb")
		rows     = flag.Int("rows", 0, "override page_views / synth row count")
		seed     = flag.Int64("seed", 1, "generator seed")
		sample   = flag.Int("sample", 2, "sample rows to print per table")
		doSynth  = flag.Bool("synth", false, "generate the synthetic (§7.5) table instead")
	)
	flag.Parse()

	fs := dfs.New()
	if *doSynth {
		n := *rows
		if n == 0 {
			n = 40_000
		}
		if err := synth.Generate(fs, n, 4, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "pigmixgen:", err)
			os.Exit(1)
		}
		describe(fs, synth.Path, *sample)
		for _, spec := range synth.Table2() {
			fmt.Printf("  %-8s cardinality=%-6.2f target-selectivity=%.1f%%\n",
				spec.Name, spec.Cardinality, spec.Selectivity*100)
		}
		return
	}

	var inst pigmix.Instance
	switch *instance {
	case "15gb":
		inst = pigmix.Instance15GB()
	case "150gb":
		inst = pigmix.Instance150GB()
	default:
		fmt.Fprintf(os.Stderr, "pigmixgen: unknown instance %q\n", *instance)
		os.Exit(2)
	}
	cfg := inst.Config
	cfg.Seed = *seed
	if *rows > 0 {
		cfg.PageViewsRows = *rows
	}
	if err := pigmix.Generate(fs, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pigmixgen:", err)
		os.Exit(1)
	}
	fmt.Printf("instance %s (stands in for %d GB)\n", inst.Name, inst.TargetBytes>>30)
	for _, p := range []string{pigmix.PathPageViews, pigmix.PathUsers, pigmix.PathPowerUsers, pigmix.PathWideRow} {
		describe(fs, p, *sample)
	}
}

func describe(fs *dfs.FS, path string, sample int) {
	st, err := fs.StatFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pigmixgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%-22s rows=%-8d bytes=%-10d partitions=%d\n", path, st.Records, st.Bytes, st.Partitions)
	if sample <= 0 {
		return
	}
	rows, err := fs.ReadAll(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pigmixgen:", err)
		os.Exit(1)
	}
	for i := 0; i < sample && i < len(rows); i++ {
		line := types.FormatTSV(rows[i])
		if len(line) > 120 {
			line = line[:117] + "..."
		}
		fmt.Printf("  %s\n", line)
	}
}
